// SpGEMM correctness against a dense reference, including a parameterized
// sweep over shapes and densities.
#include <gtest/gtest.h>

#include <tuple>

#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

using testutil::dense_matmul;
using testutil::random_csr;

TEST(Spgemm, DimensionMismatchThrows) {
  const CsrMatrix a = random_csr(3, 4, 0.5, 1);
  const CsrMatrix b = random_csr(5, 3, 0.5, 2);
  EXPECT_THROW(spgemm(a, b), DmsError);
}

TEST(Spgemm, IdentityIsNeutral) {
  const CsrMatrix a = random_csr(8, 8, 0.4, 3);
  std::vector<index_t> diag(8);
  for (index_t i = 0; i < 8; ++i) diag[static_cast<std::size_t>(i)] = i;
  const CsrMatrix eye = CsrMatrix::one_nonzero_per_row(8, diag);
  EXPECT_TRUE(spgemm(eye, a) == a);
  EXPECT_NEAR(max_abs_diff(spgemm(a, eye), a), 0.0, 1e-14);
}

TEST(Spgemm, EmptyOperandsYieldEmptyProduct) {
  const CsrMatrix a(4, 5);
  const CsrMatrix b = random_csr(5, 3, 0.6, 4);
  const CsrMatrix c = spgemm(a, b);
  EXPECT_EQ(c.rows(), 4);
  EXPECT_EQ(c.cols(), 3);
  EXPECT_EQ(c.nnz(), 0);
}

TEST(Spgemm, ResultIsValidCsr) {
  const CsrMatrix a = random_csr(20, 30, 0.2, 5);
  const CsrMatrix b = random_csr(30, 25, 0.2, 6);
  const CsrMatrix c = spgemm(a, b);
  EXPECT_NO_THROW(c.validate());
}

TEST(Spgemm, SerialAndParallelAgree) {
  const CsrMatrix a = random_csr(64, 48, 0.15, 7);
  const CsrMatrix b = random_csr(48, 56, 0.15, 8);
  SpgemmOptions serial;
  serial.parallel = false;
  SpgemmOptions parallel;
  parallel.parallel = true;
  EXPECT_TRUE(spgemm(a, b, serial) == spgemm(a, b, parallel));
}

TEST(Spgemm, FlopsCountsMultiplyAdds) {
  // A row with k nonzeros hitting B rows with m nonzeros each → k*m flops.
  const CsrMatrix a = CsrMatrix::from_triplets(1, 3, {0, 0}, {0, 2}, {1.0, 1.0});
  const CsrMatrix b = random_csr(3, 4, 1.0, 9);  // dense: 4 nnz per row
  EXPECT_EQ(spgemm_flops(a, b), 8);
}

struct SweepParam {
  index_t m, k, n;
  double da, db;
};

class SpgemmSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SpgemmSweep, MatchesDenseReference) {
  const auto p = GetParam();
  const CsrMatrix a = random_csr(p.m, p.k, p.da, 11 + p.m);
  const CsrMatrix b = random_csr(p.k, p.n, p.db, 13 + p.n);
  const CsrMatrix c = spgemm(a, b);
  c.validate();
  const DenseD ref = dense_matmul(to_dense(a), to_dense(b));
  EXPECT_LT(DenseD::max_abs_diff(to_dense(c), ref), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndDensities, SpgemmSweep,
    ::testing::Values(SweepParam{1, 1, 1, 1.0, 1.0}, SweepParam{5, 7, 3, 0.5, 0.5},
                      SweepParam{16, 16, 16, 0.1, 0.9}, SweepParam{16, 16, 16, 0.9, 0.1},
                      SweepParam{1, 40, 40, 0.3, 0.3}, SweepParam{40, 1, 40, 1.0, 1.0},
                      SweepParam{40, 40, 1, 0.3, 0.3}, SweepParam{33, 17, 29, 0.05, 0.4},
                      SweepParam{64, 32, 48, 0.25, 0.25},
                      SweepParam{100, 100, 100, 0.02, 0.02}));

}  // namespace
}  // namespace dms
