// The sampling-plan IR and executor (DESIGN.md §9): pre-refactor golden
// bit-identity for every sampler, replicated/partitioned parity for every
// SamplerKind × DistMode, plan validation errors, the dist lowering pass,
// and the per-op accounting surface.
#include <gtest/gtest.h>

#include "core/fastgcn.hpp"
#include "core/graphsage.hpp"
#include "core/graphsaint.hpp"
#include "core/labor.hpp"
#include "core/ladies.hpp"
#include "dist/sampler_factory.hpp"
#include "graph/generators.hpp"
#include "plan/builders.hpp"
#include "plan/executor.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

// --- golden fixtures --------------------------------------------------------
// The hashes below were produced by the pre-IR hand-written samplers
// (commit 169feb5) on exactly these inputs; the plan executor must
// reproduce them bit-for-bit at every thread count (CI reruns this suite
// with DMS_THREADS 1 and 4).

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

template <typename T>
std::uint64_t fnv_vec(std::uint64_t h, const std::vector<T>& v) {
  h = fnv1a(h, v.data(), v.size() * sizeof(T));
  return fnv1a(h, "|", 1);
}

std::uint64_t hash_samples(const std::vector<MinibatchSample>& samples) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const auto& ms : samples) {
    h = fnv_vec(h, ms.batch_vertices);
    for (const auto& layer : ms.layers) {
      h = fnv_vec(h, layer.row_vertices);
      h = fnv_vec(h, layer.col_vertices);
      h = fnv_vec(h, layer.adj.rowptr());
      h = fnv_vec(h, layer.adj.colidx());
      h = fnv_vec(h, layer.adj.vals());
    }
  }
  return h;
}

Graph golden_graph() { return generate_erdos_renyi(220, 9.0, 42); }

std::vector<std::vector<index_t>> golden_batches(index_t n) {
  std::vector<std::vector<index_t>> batches(5);
  for (index_t i = 0; i < 5; ++i) {
    for (index_t j = 0; j < 8; ++j) {
      batches[static_cast<std::size_t>(i)].push_back((i * 37 + j * 11) % n);
    }
  }
  return batches;
}

const std::vector<index_t> kGoldenIds = {0, 1, 2, 3, 4};
constexpr std::uint64_t kGoldenEpoch = 0xabcdef12345ULL;
const SamplerConfig kGoldenConfig{{4, 3}, /*seed=*/9};

constexpr std::uint64_t kGoldenSage = 7870691245162309158ULL;
constexpr std::uint64_t kGoldenLadies = 9134896147463349938ULL;
constexpr std::uint64_t kGoldenFastGcn = 11136146592790071496ULL;
constexpr std::uint64_t kGoldenSaint = 11175461533758532319ULL;

TEST(PlanGolden, SageBitIdenticalToPreRefactorSampler) {
  const Graph g = golden_graph();
  GraphSageSampler s(g, kGoldenConfig);
  EXPECT_EQ(hash_samples(s.sample_bulk(golden_batches(g.num_vertices()),
                                       kGoldenIds, kGoldenEpoch)),
            kGoldenSage);
}

TEST(PlanGolden, LadiesBitIdenticalToPreRefactorSampler) {
  const Graph g = golden_graph();
  LadiesSampler s(g, kGoldenConfig);
  EXPECT_EQ(hash_samples(s.sample_bulk(golden_batches(g.num_vertices()),
                                       kGoldenIds, kGoldenEpoch)),
            kGoldenLadies);
}

TEST(PlanGolden, FastGcnBitIdenticalToPreRefactorSampler) {
  const Graph g = golden_graph();
  FastGcnSampler s(g, kGoldenConfig);
  EXPECT_EQ(hash_samples(s.sample_bulk(golden_batches(g.num_vertices()),
                                       kGoldenIds, kGoldenEpoch)),
            kGoldenFastGcn);
}

TEST(PlanGolden, SaintBitIdenticalToPreRefactorSampler) {
  const Graph g = golden_graph();
  GraphSaintConfig cfg;
  cfg.walk_length = 3;
  cfg.model_layers = 2;
  GraphSaintSampler s(g, cfg);
  EXPECT_EQ(hash_samples(s.sample_bulk(golden_batches(g.num_vertices()),
                                       kGoldenIds, kGoldenEpoch)),
            kGoldenSaint);
}

TEST(PlanGolden, PartitionedRunsReproduceTheSameGoldenHashes) {
  const Graph g = golden_graph();
  const ProcessGrid grid(4, 2);
  const auto batches = golden_batches(g.num_vertices());
  const std::vector<std::pair<SamplerKind, std::uint64_t>> expected = {
      {SamplerKind::kGraphSage, kGoldenSage},
      {SamplerKind::kLadies, kGoldenLadies},
      {SamplerKind::kFastGcn, kGoldenFastGcn},
  };
  for (const auto& [kind, golden] : expected) {
    SamplerContext ctx;
    ctx.config = kGoldenConfig;
    ctx.grid = &grid;
    const auto s = make_sampler(kind, DistMode::kPartitioned, g, ctx);
    EXPECT_EQ(hash_samples(s->sample_bulk(batches, kGoldenIds, kGoldenEpoch)),
              golden)
        << to_string(kind);
  }
}

// --- SamplerKind × DistMode parity ------------------------------------------

bool samples_equal(const MinibatchSample& a, const MinibatchSample& b) {
  if (a.batch_vertices != b.batch_vertices) return false;
  if (a.layers.size() != b.layers.size()) return false;
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    if (!(a.layers[l].adj == b.layers[l].adj)) return false;
    if (a.layers[l].row_vertices != b.layers[l].row_vertices) return false;
    if (a.layers[l].col_vertices != b.layers[l].col_vertices) return false;
  }
  return true;
}

TEST(PlanParity, EveryKindMatchesAcrossModesAndGrids) {
  const Graph g = generate_erdos_renyi(180, 10.0, 51);
  const auto batches = golden_batches(g.num_vertices());
  for (const SamplerKind kind :
       {SamplerKind::kGraphSage, SamplerKind::kLadies, SamplerKind::kFastGcn,
        SamplerKind::kLabor}) {
    SamplerContext rep_ctx;
    rep_ctx.config = kGoldenConfig;
    const auto rep = make_sampler(kind, DistMode::kReplicated, g, rep_ctx);
    const auto ref = rep->sample_bulk(batches, kGoldenIds, 99);
    for (const auto& [p, c] : std::vector<std::pair<int, int>>{
             {1, 1}, {2, 1}, {4, 2}, {8, 4}}) {
      const ProcessGrid grid(p, c);
      SamplerContext ctx;
      ctx.config = kGoldenConfig;
      ctx.grid = &grid;
      const auto part = make_sampler(kind, DistMode::kPartitioned, g, ctx);
      const auto got = part->sample_bulk(batches, kGoldenIds, 99);
      ASSERT_EQ(got.size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_TRUE(samples_equal(got[i], ref[i]))
            << to_string(kind) << " grid " << p << "/" << c << " batch " << i;
      }
    }
  }
}

// --- plan validation --------------------------------------------------------

TEST(PlanValidate, UnboundSlotRejected) {
  SamplePlan p;
  p.name = "broken";
  p.frontier_slot = p.add_slot();
  const SlotId never_written = p.add_slot();
  const SlotId out = p.add_slot();
  PlanOp norm;
  norm.kind = PlanOpKind::kNormalize;
  norm.label = "normalize";
  norm.phase = kPhaseProbability;
  norm.in = never_written;
  (void)out;
  p.body.push_back(norm);
  try {
    validate_plan(p);
    FAIL() << "expected DmsError";
  } catch (const DmsError& e) {
    EXPECT_NE(std::string(e.what()).find("unbound slot"), std::string::npos)
        << e.what();
  }
}

TEST(PlanValidate, MissingOperandRejected) {
  SamplePlan p;
  p.name = "broken";
  p.frontier_slot = p.add_slot();
  PlanOp mul;
  mul.kind = PlanOpKind::kSpgemm;
  mul.label = "spgemm";
  mul.phase = kPhaseProbability;
  mul.in = p.frontier_slot;  // no out slot
  p.body.push_back(mul);
  try {
    validate_plan(p);
    FAIL() << "expected DmsError";
  } catch (const DmsError& e) {
    EXPECT_NE(std::string(e.what()).find("missing operand"), std::string::npos)
        << e.what();
  }
}

TEST(PlanValidate, SlotOutOfRangeRejected) {
  SamplePlan p;
  p.name = "broken";
  p.frontier_slot = p.add_slot();
  PlanOp norm;
  norm.kind = PlanOpKind::kNormalize;
  norm.label = "normalize";
  norm.phase = kPhaseProbability;
  norm.in = 17;  // never allocated
  p.body.push_back(norm);
  EXPECT_THROW(validate_plan(p), DmsError);
}

TEST(PlanValidate, DistOpInUnloweredPlanRejected) {
  SamplePlan p = build_sage_plan();
  for (PlanOp& op : p.body) {
    if (op.kind == PlanOpKind::kSpgemm) op.kind = PlanOpKind::kSpgemm15d;
  }
  EXPECT_THROW(validate_plan(p), DmsError);
}

TEST(PlanValidate, BuiltinPlansValidate) {
  for (const SamplePlan& p :
       {build_sage_plan(), build_ladies_plan(), build_fastgcn_plan(),
        build_labor_plan(), build_saint_plan(3, 2),
        build_node2vec_plan(3, 2, 0.5, 2.0), build_pinsage_plan()}) {
    EXPECT_NO_THROW(validate_plan(p)) << p.name;
    EXPECT_FALSE(describe(p).empty());
  }
}

// --- executor type/shape errors --------------------------------------------

TEST(PlanExecute, TypeMismatchRejected) {
  // ITS over the frontier slot (per-batch lists, not a matrix).
  SamplePlan p;
  p.name = "type_broken";
  const SlotId frontier = p.frontier_slot = p.add_slot();
  const SlotId out = p.add_slot();
  PlanOp its;
  its.kind = PlanOpKind::kItsSample;
  its.label = "its";
  its.phase = kPhaseSampling;
  its.in = frontier;
  its.out = out;
  p.body.push_back(its);
  const Graph g(testutil::paper_example_adjacency());
  PlanExecutor exec(p, SamplerConfig{{2}, 1});
  Workspace ws;
  try {
    exec.run(g, {{0, 1}}, {0}, 5, &ws);
    FAIL() << "expected DmsError";
  } catch (const DmsError& e) {
    EXPECT_NE(std::string(e.what()).find("type mismatch"), std::string::npos)
        << e.what();
  }
}

TEST(PlanExecute, BatchVertexOutOfRangeRejected) {
  const Graph g(testutil::paper_example_adjacency());  // 6 vertices
  PlanExecutor exec(build_sage_plan(), SamplerConfig{{2}, 1});
  Workspace ws;
  EXPECT_THROW(exec.run(g, {{0, 99}}, {0}, 5, &ws), DmsError);
}

TEST(PlanExecute, ModeMismatchesRejected) {
  const Graph g(testutil::paper_example_adjacency());
  Workspace ws;
  // A lowered plan cannot run replicated...
  PlanExecutor lowered(lower_to_dist(build_sage_plan()), SamplerConfig{{2}, 1});
  EXPECT_THROW(lowered.run(g, {{0}}, {0}, 5, &ws), DmsError);
  // ...and an unlowered plan cannot run partitioned.
  PlanExecutor plain(build_sage_plan(), SamplerConfig{{2}, 1});
  Cluster cluster(ProcessGrid(2, 1), CostModel(LinkParams{}));
  const DistBlockRowMatrix dadj(cluster.grid(), g.adjacency());
  const BlockPartition assign(1, cluster.grid().rows());
  EXPECT_THROW(plain.run_partitioned(cluster, dadj, assign, {{0}}, {0}, 5, &ws,
                                     SpgemmOptions{}, true),
               DmsError);
}

TEST(PlanExecute, MissingGlobalWeightsRejected) {
  const Graph g(testutil::paper_example_adjacency());
  PlanExecutor exec(build_fastgcn_plan(), SamplerConfig{{2}, 1});
  Workspace ws;
  EXPECT_THROW(exec.run(g, {{0}}, {0}, 5, &ws, /*global_weights=*/nullptr),
               DmsError);
}

// --- the dist lowering pass -------------------------------------------------

TEST(PlanLowering, RewritesCollectiveOpsAndOnlyThose) {
  const SamplePlan plain = build_ladies_plan();
  const SamplePlan lowered = lower_to_dist(plain);
  EXPECT_TRUE(lowered.distributed);
  ASSERT_EQ(lowered.body.size(), plain.body.size());
  for (std::size_t i = 0; i < plain.body.size(); ++i) {
    const PlanOpKind before = plain.body[i].kind;
    const PlanOpKind after = lowered.body[i].kind;
    if (before == PlanOpKind::kSpgemm) {
      EXPECT_EQ(after, PlanOpKind::kSpgemm15d);
    } else if (before == PlanOpKind::kMaskedExtract) {
      EXPECT_EQ(after, PlanOpKind::kMaskedExtract15d);
    } else {
      EXPECT_EQ(after, before) << "row-local op " << i << " changed";
    }
  }
}

TEST(PlanLowering, FastGcnLoweringIsRowLocalExceptExtraction) {
  // FastGCN's plan has no probability kSpgemm — under lowering, sampling
  // stays row-local and only the masked extraction becomes a collective,
  // so the historical blocker for a partitioned FastGCN evaporates.
  const SamplePlan plain = build_fastgcn_plan();
  int spgemm_ops = 0;
  for (const PlanOp& op : plain.body) {
    spgemm_ops += op.kind == PlanOpKind::kSpgemm ? 1 : 0;
  }
  EXPECT_EQ(spgemm_ops, 0);
  EXPECT_NO_THROW(lower_to_dist(plain));
}

TEST(PlanLowering, SaintLowersAndPartitionedMatchesGolden) {
  // Walk plans lower like every other plan: the probability SpGEMM becomes
  // the 1.5D collective, the row-local walk ops (and the induced-subgraph
  // epilogue, which fetches remote rows from their owner blocks) run
  // unchanged — and reproduce the replicated golden hash.
  const SamplePlan lowered = lower_to_dist(build_saint_plan(3, 2));
  EXPECT_TRUE(lowered.distributed);
  const Graph g = golden_graph();
  GraphSaintConfig cfg;
  cfg.walk_length = 3;
  cfg.model_layers = 2;
  for (const auto& [p, c] :
       std::vector<std::pair<int, int>>{{2, 1}, {4, 2}}) {
    const ProcessGrid grid(p, c);
    PartitionedSaintSampler s(g, grid, cfg);
    EXPECT_EQ(hash_samples(s.sample_bulk(golden_batches(g.num_vertices()),
                                         kGoldenIds, kGoldenEpoch)),
              kGoldenSaint)
        << p << "/" << c;
  }
}

TEST(PlanLowering, AlreadyLoweredRejected) {
  EXPECT_THROW(lower_to_dist(lower_to_dist(build_sage_plan())), DmsError);
}

// --- per-op accounting ------------------------------------------------------

TEST(PlanAccounting, OpBreakdownCoversEveryBodyOp) {
  const Graph g = generate_erdos_renyi(150, 8.0, 61);
  GraphSageSampler s(g, kGoldenConfig);
  EXPECT_TRUE(s.op_time_breakdown().empty());
  s.sample_bulk(golden_batches(g.num_vertices()), kGoldenIds, 3);
  const auto breakdown = s.op_time_breakdown();
  for (const PlanOp& op : s.plan().body) {
    const auto it = breakdown.find(s.plan().name + "/" + op.label);
    ASSERT_NE(it, breakdown.end()) << op.label;
    EXPECT_GE(it->second, 0.0);
  }
}

TEST(PlanAccounting, PartitionedClusterPhasesStillRecorded) {
  const Graph g = generate_erdos_renyi(150, 8.0, 62);
  Cluster cluster(ProcessGrid(4, 2), CostModel(LinkParams{}));
  PartitionedLaborSampler s(g, cluster.grid(), kGoldenConfig);
  s.sample_bulk(cluster, golden_batches(g.num_vertices()), kGoldenIds, 3);
  EXPECT_GT(cluster.phase_time(kPhaseProbability), 0.0);
  EXPECT_GT(cluster.phase_time(kPhaseSampling), 0.0);
  EXPECT_GT(cluster.phase_time(kPhaseExtraction), 0.0);
  EXPECT_FALSE(s.op_time_breakdown().empty());
}

TEST(PlanAccounting, EpochStatsCarryPerOpBreakdown) {
  const Dataset ds = make_planted_dataset(/*n=*/256, /*classes=*/4, /*f=*/8,
                                          /*avg_degree=*/8.0, /*p_intra=*/0.85,
                                          /*seed=*/5);
  Cluster cluster(ProcessGrid(2, 1), CostModel(LinkParams{}));
  PipelineConfig cfg;
  cfg.sampler = SamplerKind::kGraphSage;
  cfg.fanouts = {4, 3};
  cfg.batch_size = 32;
  cfg.hidden = 16;
  Pipeline pipe(cluster, ds, cfg);
  const EpochStats stats = pipe.run_epoch(0);
  testutil::expect_epoch_stats_consistent(stats);
  EXPECT_FALSE(stats.sampler_ops.empty());
  double total = 0.0;
  for (const auto& [op, sec] : stats.sampler_ops) {
    EXPECT_GE(sec, 0.0) << op;
    total += sec;
  }
  EXPECT_GT(total, 0.0);
}

}  // namespace
}  // namespace dms
