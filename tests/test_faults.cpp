// Fault-injection chaos layer (DESIGN.md §13): deterministic FaultPlan
// draws, straggler/retry/crash accounting on the Cluster, survivor recovery
// in the 1.5D SpGEMM (bit-identical results under rank death), and
// degrade-and-continue training epochs on the survivor set.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/cluster.hpp"
#include "comm/faults.hpp"
#include "dist/dist_sampler.hpp"
#include "dist/spgemm_15d.hpp"
#include "graph/dataset.hpp"
#include "sparse/ops.hpp"
#include "test_util.hpp"
#include "train/pipeline.hpp"

namespace dms {
namespace {

void expect_csr_equal(const CsrMatrix& a, const CsrMatrix& b,
                      const std::string& ctx) {
  ASSERT_EQ(a.rows(), b.rows()) << ctx;
  ASSERT_EQ(a.cols(), b.cols()) << ctx;
  ASSERT_EQ(a.rowptr(), b.rowptr()) << ctx;
  ASSERT_EQ(a.colidx(), b.colidx()) << ctx;
  ASSERT_EQ(a.vals(), b.vals()) << ctx;
}

TEST(FaultPlan, DrawsAreDeterministicAndSeedDependent) {
  FaultPlanConfig cfg;
  cfg.seed = 42;
  cfg.straggler_rate = 0.3;
  cfg.straggler_factor = 2.5;
  cfg.loss_rate = 0.3;
  const FaultPlan a(cfg), b(cfg);
  cfg.seed = 43;
  const FaultPlan c(cfg);
  int differs = 0;
  for (index_t s = 0; s < 64; ++s) {
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(a.slowdown(s, r), b.slowdown(s, r));
      if (a.slowdown(s, r) != c.slowdown(s, r)) ++differs;
    }
    EXPECT_EQ(a.lost(static_cast<std::uint64_t>(s), 0),
              b.lost(static_cast<std::uint64_t>(s), 0));
  }
  EXPECT_GT(differs, 0);  // a different seed draws a different schedule
}

TEST(FaultPlan, SlowdownIsOneOrTheFactor) {
  FaultPlanConfig cfg;
  cfg.seed = 7;
  cfg.straggler_rate = 0.5;
  cfg.straggler_factor = 3.0;
  const FaultPlan plan(cfg);
  int straggled = 0, clean = 0;
  for (index_t s = 0; s < 200; ++s) {
    const double f = plan.slowdown(s, 0);
    if (f == 3.0) ++straggled;
    else if (f == 1.0) ++clean;
    else FAIL() << "slowdown must be 1 or the factor, got " << f;
  }
  EXPECT_GT(straggled, 0);
  EXPECT_GT(clean, 0);
}

TEST(FaultPlan, CrashesFireAtTheirSuperstepOnly) {
  FaultPlanConfig cfg;
  cfg.crashes = {{2, 3}, {1, 3}, {0, 5}};
  const FaultPlan plan(cfg);
  EXPECT_TRUE(plan.crashes_at(0).empty());
  EXPECT_EQ(plan.crashes_at(3), (std::vector<int>{1, 2}));  // sorted
  EXPECT_EQ(plan.crashes_at(5), (std::vector<int>{0}));
}

TEST(FaultPlan, RejectsInvalidConfigs) {
  FaultPlanConfig bad;
  bad.straggler_rate = 1.5;
  EXPECT_THROW(FaultPlan{bad}, DmsError);
  bad = {};
  bad.loss_rate = -0.1;
  EXPECT_THROW(FaultPlan{bad}, DmsError);
  bad = {};
  bad.straggler_factor = 0.5;
  EXPECT_THROW(FaultPlan{bad}, DmsError);
  bad = {};
  bad.crashes = {{-1, 0}};
  EXPECT_THROW(FaultPlan{bad}, DmsError);
}

TEST(RecoveryPolicy, BackoffGrowsExponentiallyAndSaturates) {
  RecoveryPolicy pol;
  pol.base_backoff = 1e-4;
  pol.backoff_factor = 2.0;
  pol.max_backoff = 4e-4;
  EXPECT_DOUBLE_EQ(pol.backoff(0), 1e-4);
  EXPECT_DOUBLE_EQ(pol.backoff(1), 2e-4);
  EXPECT_DOUBLE_EQ(pol.backoff(2), 4e-4);
  EXPECT_DOUBLE_EQ(pol.backoff(10), 4e-4);  // capped
}

TEST(Cluster, StragglerMultiplierScalesComputeAndIsAccounted) {
  FaultPlanConfig cfg;
  cfg.seed = 1;
  cfg.straggler_rate = 1.0;  // every (superstep, rank) straggles
  cfg.straggler_factor = 3.0;
  const FaultPlan plan(cfg);

  Cluster healthy(ProcessGrid(2, 1), CostModel(LinkParams{}));
  healthy.add_compute("phase", 0.5);
  const double base = healthy.phase_time("phase");

  Cluster faulty(ProcessGrid(2, 1), CostModel(LinkParams{}));
  faulty.install_faults(&plan);
  faulty.begin_superstep();
  faulty.add_compute("phase", 0.5);
  EXPECT_NEAR(faulty.phase_time("phase"), 3.0 * base, 1e-12);
  EXPECT_NEAR(faulty.fault_stats().straggler_seconds, 2.0 * base, 1e-12);
}

TEST(Cluster, TransientLossRetriesWithBackoffUntilTheForcedAttempt) {
  FaultPlanConfig cfg;
  cfg.seed = 9;
  cfg.loss_rate = 1.0;  // every allowed retry attempt fails
  const FaultPlan plan(cfg);
  RecoveryPolicy pol;
  pol.max_attempts = 3;
  pol.base_backoff = 1e-3;
  pol.backoff_factor = 2.0;
  pol.max_backoff = 1.0;

  Cluster cluster(ProcessGrid(2, 1), CostModel(LinkParams{}));
  cluster.install_faults(&plan, pol);
  cluster.record_comm("phase", 0.1, 1000, 1);

  // Attempts 0 and 1 are lost (each pays retransmit + backoff); attempt 2 is
  // the forced delivery.
  const CommStats& s = cluster.comm_stats().at("phase");
  EXPECT_EQ(s.messages, 3u);
  EXPECT_EQ(s.bytes, 3000u);
  EXPECT_NEAR(s.seconds, 0.3 + pol.backoff(0) + pol.backoff(1), 1e-12);
  const FaultStats& f = cluster.fault_stats();
  EXPECT_EQ(f.lost_messages, 2u);
  EXPECT_EQ(f.retry_bytes, 2000u);
  EXPECT_NEAR(f.retry_seconds, 0.2 + pol.backoff(0) + pol.backoff(1), 1e-12);
}

TEST(Cluster, CrashesArePermanentAndRowLivenessFollows) {
  FaultPlanConfig cfg;
  cfg.crashes = {{3, 1}};  // rank 3 dies at superstep 1
  const FaultPlan plan(cfg);
  // 4 ranks as 2 rows x 2 columns.
  Cluster cluster(ProcessGrid(4, 2), CostModel(LinkParams{}));
  cluster.install_faults(&plan);

  cluster.begin_superstep();  // superstep 0: everyone alive
  EXPECT_TRUE(cluster.alive(3));
  EXPECT_EQ(cluster.num_alive(), 4);

  cluster.begin_superstep();  // superstep 1: rank 3 dies
  EXPECT_FALSE(cluster.alive(3));
  EXPECT_EQ(cluster.num_alive(), 3);
  EXPECT_EQ(cluster.fault_stats().crashed_ranks, 1u);
  // Column-major grid: rank 3 is (row 1, col 1); row 1 still has (1, 0).
  EXPECT_TRUE(cluster.row_alive(1));

  cluster.reset_clock();  // epochs reset the clock, never resurrect ranks
  EXPECT_FALSE(cluster.alive(3));
  cluster.begin_superstep();
  EXPECT_EQ(cluster.fault_stats().crashed_ranks, 1u);  // counted once
}

TEST(Cluster, InstallFaultsRejectsBadPolicies) {
  const FaultPlan plan(FaultPlanConfig{});
  Cluster cluster(ProcessGrid(2, 1), CostModel(LinkParams{}));
  RecoveryPolicy pol;
  pol.max_attempts = 0;
  EXPECT_THROW(cluster.install_faults(&plan, pol), DmsError);
  FaultPlanConfig out_of_grid;
  out_of_grid.crashes = {{7, 0}};  // grid has 2 ranks
  const FaultPlan bad_plan(out_of_grid);
  EXPECT_THROW(cluster.install_faults(&bad_plan), DmsError);
}

TEST(Spgemm15d, RankDeathKeepsResultsBitIdenticalAndCountsRedistribution) {
  const CsrMatrix a = testutil::random_csr(64, 64, 0.08, 3);
  const CsrMatrix q = testutil::random_csr(48, 64, 0.1, 4);
  const ProcessGrid grid(4, 2);
  const BlockPartition qpart(q.rows(), grid.rows());
  std::vector<CsrMatrix> q_blocks;
  for (index_t i = 0; i < grid.rows(); ++i) {
    q_blocks.push_back(row_slice(q, qpart.begin(i), qpart.end(i)));
  }

  for (const bool sparsity_aware : {false, true}) {
    Spgemm15dOptions opts;
    opts.sparsity_aware = sparsity_aware;

    Cluster healthy(grid, CostModel(LinkParams{}));
    DistBlockRowMatrix da(grid, a);
    const auto ref = spgemm_15d(healthy, q_blocks, da, opts);

    FaultPlanConfig cfg;
    // Rank 0 = (row 0, col 0) owns a chunk of A; killing it forces both the
    // survivor re-fetch of its block (oblivious broadcast) and the
    // dst/src degradation of the sparsity-aware exchange.
    cfg.crashes = {{0, 0}};
    const FaultPlan plan(cfg);
    Cluster faulty(grid, CostModel(LinkParams{}));
    faulty.install_faults(&plan);
    faulty.begin_superstep();
    ASSERT_FALSE(faulty.alive(0));
    Spgemm15dStats stats;
    const auto got = spgemm_15d(faulty, q_blocks, da, opts, &stats);

    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      expect_csr_equal(ref[i], got[i],
                       "block " + std::to_string(i) +
                           (sparsity_aware ? " (aware)" : " (oblivious)"));
    }
    // The survivor had to re-fetch the dead rank's work.
    EXPECT_GT(stats.redistribution_bytes, 0u);
    EXPECT_GT(faulty.fault_stats().redistribution_seconds, 0.0);
  }
}

TEST(Spgemm15d, FullyDeadRowIsUnrecoverableOnlyIfReferenced) {
  const CsrMatrix a = testutil::random_csr(32, 32, 0.1, 5);
  const ProcessGrid grid(4, 2);  // 2 rows x 2 columns
  DistBlockRowMatrix da(grid, a);
  // Kill both replicas of process row 1: ranks (1, 0) = 1 and (1, 1) = 3.
  FaultPlanConfig cfg;
  cfg.crashes = {{1, 0}, {3, 0}};
  const FaultPlan plan(cfg);

  // A Q that references the dead block row cannot be recovered.
  {
    Cluster cluster(grid, CostModel(LinkParams{}));
    cluster.install_faults(&plan);
    cluster.begin_superstep();
    std::vector<CsrMatrix> q_blocks = {testutil::random_csr(8, 32, 0.5, 6),
                                       CsrMatrix(0, 32)};
    EXPECT_THROW(spgemm_15d(cluster, q_blocks, da, Spgemm15dOptions{}),
                 DmsError);
  }
  // A Q confined to the surviving block rows sails through.
  {
    Cluster cluster(grid, CostModel(LinkParams{}));
    cluster.install_faults(&plan);
    cluster.begin_superstep();
    const index_t b0 = da.partition().begin(0), e0 = da.partition().end(0);
    CooMatrix coo(8, 32);
    Pcg32 rng(8, 1);
    for (index_t r = 0; r < 8; ++r) {
      coo.push(r, b0 + rng.bounded(static_cast<std::uint32_t>(e0 - b0)), 1.0);
    }
    std::vector<CsrMatrix> q_blocks = {CsrMatrix::from_coo(coo),
                                       CsrMatrix(0, 32)};
    const auto out =
        spgemm_15d(cluster, q_blocks, da, Spgemm15dOptions{});
    EXPECT_EQ(out[0].rows(), 8);
  }
}

TEST(PartitionedSampler, SamplesAreBitIdenticalUnderRankDeath) {
  const Dataset ds = make_planted_dataset(256, 4, 8, 8.0, 0.85, 5);
  const ProcessGrid grid(4, 2);
  for (const SamplerKind kind :
       {SamplerKind::kGraphSage, SamplerKind::kLadies}) {
    const SamplerConfig sc{kind == SamplerKind::kGraphSage
                               ? std::vector<index_t>{4, 4}
                               : std::vector<index_t>{32},
                           17};
    const auto make = [&](SamplerKind k) {
      return make_sampler(k, DistMode::kPartitioned, ds.graph,
                          SamplerContext{sc, &grid, {}, nullptr, {}});
    };
    std::vector<std::vector<index_t>> batches;
    std::vector<index_t> ids;
    for (index_t b = 0; b < 8; ++b) {
      std::vector<index_t> batch;
      for (index_t v = 0; v < 16; ++v) batch.push_back((b * 16 + v) % 256);
      batches.push_back(std::move(batch));
      ids.push_back(b);
    }

    const auto sampler_h = make(kind);
    Cluster healthy(grid, CostModel(LinkParams{}));
    const auto ref = as_partitioned(*sampler_h)
                         .sample_bulk(healthy, batches, ids, 0xabc);

    FaultPlanConfig cfg;
    cfg.crashes = {{1, 0}};
    const FaultPlan plan(cfg);
    const auto sampler_f = make(kind);
    Cluster faulty(grid, CostModel(LinkParams{}));
    faulty.install_faults(&plan);
    faulty.begin_superstep();
    const auto got = as_partitioned(*sampler_f)
                         .sample_bulk(faulty, batches, ids, 0xabc);

    // Flatten both (the per-row split differs — dead rows take no batches —
    // but the concatenation preserves sub-batch order either way).
    std::vector<const MinibatchSample*> flat_ref, flat_got;
    for (const auto& row : ref)
      for (const auto& ms : row) flat_ref.push_back(&ms);
    for (const auto& row : got)
      for (const auto& ms : row) flat_got.push_back(&ms);
    ASSERT_EQ(flat_ref.size(), flat_got.size());
    for (std::size_t i = 0; i < flat_ref.size(); ++i) {
      EXPECT_EQ(flat_ref[i]->batch_vertices, flat_got[i]->batch_vertices)
          << to_string(kind) << " sample " << i;
      ASSERT_EQ(flat_ref[i]->layers.size(), flat_got[i]->layers.size());
      for (std::size_t l = 0; l < flat_ref[i]->layers.size(); ++l) {
        expect_csr_equal(flat_ref[i]->layers[l].adj, flat_got[i]->layers[l].adj,
                         to_string(kind) + " sample " + std::to_string(i) +
                             " layer " + std::to_string(l));
      }
    }
  }
}

TEST(Pipeline, ZeroRateFaultPlanIsBitIdenticalToNoPlan) {
  const Dataset ds =
      make_planted_dataset(256, 4, 8, 8.0, 0.85, 5);
  for (const DistMode mode : {DistMode::kReplicated, DistMode::kPartitioned}) {
    PipelineConfig cfg;
    cfg.mode = mode;
    cfg.batch_size = 32;
    cfg.fanouts = {4, 4};
    cfg.hidden = 16;
    cfg.bulk_k = 8;

    Cluster plain(ProcessGrid(4, 2), CostModel(LinkParams{}));
    Pipeline p_plain(plain, ds, cfg);
    const EpochStats s_plain = p_plain.run_epoch(0);

    const FaultPlan zero(FaultPlanConfig{});
    Cluster nulled(ProcessGrid(4, 2), CostModel(LinkParams{}));
    nulled.install_faults(&zero);
    Pipeline p_nulled(nulled, ds, cfg);
    const EpochStats s_nulled = p_nulled.run_epoch(0);

    EXPECT_EQ(s_plain.loss, s_nulled.loss) << to_string(mode);
    EXPECT_EQ(s_plain.train_acc, s_nulled.train_acc) << to_string(mode);
    EXPECT_EQ(s_nulled.fault_straggler, 0.0);
    EXPECT_EQ(s_nulled.fault_retry, 0.0);
    EXPECT_EQ(s_nulled.fault_redistribution, 0.0);
    EXPECT_EQ(s_nulled.crashed_ranks, 0u);
  }
}

TEST(Pipeline, EpochsCompleteOnSurvivorsAfterACrash) {
  // The headline degrade-and-continue property: a rank dies mid-epoch, the
  // remaining rounds re-partition onto the survivors, the epoch (and the
  // next one) completes, and the fault fields expose what recovery cost.
  const Dataset ds =
      make_planted_dataset(256, 4, 8, 8.0, 0.85, 5);
  for (const SamplerKind kind :
       {SamplerKind::kGraphSage, SamplerKind::kLadies}) {
    PipelineConfig cfg;
    cfg.sampler = kind;
    cfg.mode = DistMode::kPartitioned;
    // 128 training vertices -> 16 batches; on the 4-rank grid with
    // bulk_k = 4 that is four bulk rounds, i.e. four crash boundaries.
    cfg.batch_size = 8;
    cfg.fanouts = kind == SamplerKind::kGraphSage ? std::vector<index_t>{4, 4}
                                                  : std::vector<index_t>{32};
    cfg.hidden = 16;
    cfg.bulk_k = 4;

    FaultPlanConfig fault_cfg;
    fault_cfg.seed = 3;
    // Rank 1 = (row 1, col 0) dies at the third boundary; rank 3 keeps
    // process row 1 alive.
    fault_cfg.crashes = {{1, 2}};
    fault_cfg.loss_rate = 0.05;
    fault_cfg.straggler_rate = 0.1;
    const FaultPlan plan(fault_cfg);

    Cluster cluster(ProcessGrid(4, 2), CostModel(LinkParams{}));
    cluster.install_faults(&plan);
    Pipeline pipe(cluster, ds, cfg);
    const EpochStats e0 = pipe.run_epoch(0);
    const EpochStats e1 = pipe.run_epoch(1);

    EXPECT_TRUE(std::isfinite(e0.loss));
    EXPECT_GT(e0.loss, 0.0);
    EXPECT_EQ(e0.crashed_ranks, 1u) << to_string(kind);
    EXPECT_GT(e0.fault_redistribution, 0.0) << to_string(kind);
    EXPECT_GT(e0.fault_retry, 0.0) << to_string(kind);
    testutil::expect_epoch_stats_consistent(e0);
    // Epoch 1 starts with the rank already dead: no new crashes, still sane.
    EXPECT_TRUE(std::isfinite(e1.loss));
    EXPECT_EQ(e1.crashed_ranks, 0u);
    testutil::expect_epoch_stats_consistent(e1);
  }
}

TEST(Pipeline, ReplicatedModeAlsoSurvivesACrash) {
  const Dataset ds =
      make_planted_dataset(256, 4, 8, 8.0, 0.85, 5);
  PipelineConfig cfg;
  cfg.mode = DistMode::kReplicated;
  cfg.batch_size = 8;  // 16 batches -> two bulk rounds on 4 ranks
  cfg.fanouts = {4, 4};
  cfg.hidden = 16;
  cfg.bulk_k = 8;

  FaultPlanConfig fault_cfg;
  fault_cfg.crashes = {{3, 1}};
  const FaultPlan plan(fault_cfg);
  Cluster cluster(ProcessGrid(4, 2), CostModel(LinkParams{}));
  cluster.install_faults(&plan);
  Pipeline pipe(cluster, ds, cfg);
  const EpochStats s = pipe.run_epoch(0);
  EXPECT_TRUE(std::isfinite(s.loss));
  EXPECT_EQ(s.crashed_ranks, 1u);
  testutil::expect_epoch_stats_consistent(s);
}

TEST(Pipeline, StragglersSlowTheClockButNeverTheArithmetic) {
  const Dataset ds =
      make_planted_dataset(256, 4, 8, 8.0, 0.85, 5);
  PipelineConfig cfg;
  cfg.mode = DistMode::kReplicated;
  cfg.batch_size = 32;
  cfg.fanouts = {4, 4};
  cfg.hidden = 16;
  cfg.bulk_k = 8;

  Cluster plain(ProcessGrid(4, 1), CostModel(LinkParams{}));
  Pipeline p_plain(plain, ds, cfg);
  const EpochStats s_plain = p_plain.run_epoch(0);

  FaultPlanConfig fault_cfg;
  fault_cfg.seed = 11;
  fault_cfg.straggler_rate = 0.5;
  fault_cfg.straggler_factor = 4.0;
  const FaultPlan plan(fault_cfg);
  Cluster slow(ProcessGrid(4, 1), CostModel(LinkParams{}));
  slow.install_faults(&plan);
  Pipeline p_slow(slow, ds, cfg);
  const EpochStats s_slow = p_slow.run_epoch(0);

  EXPECT_EQ(s_plain.loss, s_slow.loss);
  EXPECT_EQ(s_plain.train_acc, s_slow.train_acc);
  EXPECT_GT(s_slow.fault_straggler, 0.0);
  EXPECT_EQ(s_slow.crashed_ranks, 0u);
  testutil::expect_epoch_stats_consistent(s_slow);
}

}  // namespace
}  // namespace dms
