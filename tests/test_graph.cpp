// Graph wrapper, generators, datasets, partitioning.
#include <gtest/gtest.h>

#include <set>

#include "graph/dataset.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

TEST(Graph, RejectsNonSquareAdjacency) {
  EXPECT_THROW(Graph(CsrMatrix(3, 4)), DmsError);
}

TEST(Graph, DegreeStatistics) {
  const Graph g(testutil::paper_example_adjacency());
  EXPECT_EQ(g.num_vertices(), 6);
  EXPECT_EQ(g.num_edges(), 12);
  EXPECT_EQ(g.out_degree(1), 3);
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.max_degree(), 3);
  EXPECT_DOUBLE_EQ(g.avg_degree(), 2.0);
  EXPECT_NE(g.summary("x").find("|V|=6"), std::string::npos);
}

TEST(Rmat, ProducesRequestedScale) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8.0;
  const Graph g = generate_rmat(p);
  EXPECT_EQ(g.num_vertices(), 1024);
  // Dedup removes some edges; expect 60-100% of requested.
  EXPECT_GT(g.num_edges(), 1024 * 8 * 6 / 10);
  EXPECT_LE(g.num_edges(), 1024 * 8);
  g.adjacency().validate();
}

TEST(Rmat, IsDeterministicPerSeed) {
  RmatParams p;
  p.scale = 8;
  p.seed = 9;
  EXPECT_TRUE(generate_rmat(p).adjacency() == generate_rmat(p).adjacency());
  p.seed = 10;
  EXPECT_FALSE(generate_rmat(p).adjacency() ==
               generate_rmat(RmatParams{8, 16.0, 0.57, 0.19, 0.19, true, 9}).adjacency());
}

TEST(Rmat, SkewedParamsGiveSkewedDegrees) {
  RmatParams skewed;
  skewed.scale = 12;
  skewed.a = 0.7;
  skewed.b = 0.1;
  skewed.c = 0.1;
  const Graph g = generate_rmat(skewed);
  // Power-lawish: max degree far above average.
  EXPECT_GT(g.max_degree(), static_cast<index_t>(10 * g.avg_degree()));
}

TEST(Rmat, NoSelfLoopsWhenRequested) {
  RmatParams p;
  p.scale = 9;
  p.remove_self_loops = true;
  const Graph g = generate_rmat(p);
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(g.adjacency().at(v, v), 0.0);
  }
}

TEST(ErdosRenyi, HitsTargetDegree) {
  const Graph g = generate_erdos_renyi(2000, 10.0, 5);
  EXPECT_NEAR(g.avg_degree(), 10.0, 0.5);
}

TEST(PlantedPartition, IsSymmetric) {
  const Graph g = generate_planted_partition(400, 4, 6.0, 0.8, 3);
  const CsrMatrix& a = g.adjacency();
  for (index_t v = 0; v < g.num_vertices(); v += 7) {
    for (const index_t u : a.row_cols(v)) {
      EXPECT_DOUBLE_EQ(a.at(u, v), 1.0);
    }
  }
}

TEST(PlantedPartition, MostEdgesIntraClass) {
  const index_t n = 800;
  const int classes = 4;
  const Graph g = generate_planted_partition(n, classes, 8.0, 0.9, 4);
  const index_t block = ceil_div(n, classes);
  nnz_t intra = 0;
  for (index_t v = 0; v < n; ++v) {
    for (const index_t u : g.adjacency().row_cols(v)) {
      if (u / block == v / block) ++intra;
    }
  }
  EXPECT_GT(static_cast<double>(intra) / static_cast<double>(g.num_edges()), 0.8);
}

TEST(Datasets, StandInsMatchPaperDensityOrdering) {
  StandInConfig cfg;
  cfg.scale_shift = -3;  // tiny versions for test speed
  const Dataset protein = make_protein_sim(cfg);
  const Dataset products = make_products_sim(cfg);
  const Dataset papers = make_papers_sim(cfg);
  // §8.1.1: Protein (241) ≫ Products (53) ≫ Papers (29).
  EXPECT_GT(protein.graph.avg_degree(), products.graph.avg_degree());
  EXPECT_GT(products.graph.avg_degree(), papers.graph.avg_degree());
  // Papers has the most vertices.
  EXPECT_GT(papers.num_vertices(), products.num_vertices());
  EXPECT_GT(products.num_vertices(), protein.num_vertices());
}

TEST(Datasets, SplitsArePartition) {
  StandInConfig cfg;
  cfg.scale_shift = -5;
  const Dataset ds = make_products_sim(cfg);
  std::set<index_t> all;
  all.insert(ds.train_idx.begin(), ds.train_idx.end());
  all.insert(ds.val_idx.begin(), ds.val_idx.end());
  all.insert(ds.test_idx.begin(), ds.test_idx.end());
  EXPECT_EQ(all.size(),
            ds.train_idx.size() + ds.val_idx.size() + ds.test_idx.size());
  EXPECT_EQ(static_cast<index_t>(all.size()), ds.num_vertices());
  for (const int label : ds.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, ds.num_classes);
  }
}

TEST(Datasets, LookupByName) {
  StandInConfig cfg;
  cfg.scale_shift = -6;
  EXPECT_EQ(make_standin_by_name("products", cfg).name, "products-sim");
  EXPECT_EQ(make_standin_by_name("papers", cfg).name, "papers-sim");
  EXPECT_EQ(make_standin_by_name("protein", cfg).name, "protein-sim");
  EXPECT_THROW(make_standin_by_name("ogbn-mag", cfg), DmsError);
}

TEST(Datasets, PlantedFeaturesAreClassSeparable) {
  const Dataset ds = make_planted_dataset(200, 4, 16, 6.0, 0.8, 7);
  // Per-class centroid distances should exceed within-class spread.
  std::vector<std::vector<double>> centroid(4, std::vector<double>(16, 0.0));
  std::vector<int> count(4, 0);
  for (index_t v = 0; v < ds.num_vertices(); ++v) {
    const int c = ds.labels[static_cast<std::size_t>(v)];
    ++count[static_cast<std::size_t>(c)];
    for (int j = 0; j < 16; ++j) {
      centroid[static_cast<std::size_t>(c)][static_cast<std::size_t>(j)] +=
          ds.features(v, j);
    }
  }
  double min_dist = 1e30;
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) {
      double d = 0;
      for (int j = 0; j < 16; ++j) {
        const double da = centroid[a][j] / count[a] - centroid[b][j] / count[b];
        d += da * da;
      }
      min_dist = std::min(min_dist, std::sqrt(d));
    }
  }
  EXPECT_GT(min_dist, 1.0);
}

TEST(BlockPartition, BalancedSizes) {
  const BlockPartition p(10, 3);
  EXPECT_EQ(p.size(0), 4);
  EXPECT_EQ(p.size(1), 3);
  EXPECT_EQ(p.size(2), 3);
  EXPECT_EQ(p.begin(0), 0);
  EXPECT_EQ(p.end(2), 10);
}

TEST(BlockPartition, OwnerAndLocal) {
  const BlockPartition p(10, 3);
  EXPECT_EQ(p.owner(0), 0);
  EXPECT_EQ(p.owner(3), 0);
  EXPECT_EQ(p.owner(4), 1);
  EXPECT_EQ(p.owner(9), 2);
  EXPECT_EQ(p.local(5), 1);
  EXPECT_THROW(p.owner(10), DmsError);
}

TEST(BlockPartition, FromOffsets) {
  const auto p = BlockPartition::from_offsets({0, 2, 2, 7});
  EXPECT_EQ(p.parts(), 3);
  EXPECT_EQ(p.total(), 7);
  EXPECT_EQ(p.size(1), 0);
  EXPECT_EQ(p.owner(2), 2);
  EXPECT_THROW(BlockPartition::from_offsets({1, 2}), DmsError);
  EXPECT_THROW(BlockPartition::from_offsets({0, 3, 2}), DmsError);
}

}  // namespace
}  // namespace dms
