// Unit tests for the deterministic RNG substrate.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"

namespace dms {
namespace {

TEST(SplitMix64, IsDeterministic) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(SplitMix64, MixesNearbyInputs) {
  // Adjacent seeds should differ in many bits.
  const std::uint64_t a = splitmix64(1000);
  const std::uint64_t b = splitmix64(1001);
  const int bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(bits, 16);
  EXPECT_LT(bits, 48);
}

TEST(DeriveSeed, DistinctAcrossComponents) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 8; ++a) {
    for (std::uint64_t b = 0; b < 8; ++b) {
      for (std::uint64_t c = 0; c < 8; ++c) {
        seen.insert(derive_seed(7, a, b, c));
      }
    }
  }
  EXPECT_EQ(seen.size(), 8u * 8u * 8u);
}

TEST(Pcg32, SameSeedSameStream) {
  Pcg32 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Pcg32, DifferentSeedDifferentStream) {
  Pcg32 a(123), b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Pcg32, UniformInUnitInterval) {
  Pcg32 rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Pcg32, BoundedRespectsBound) {
  Pcg32 rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Pcg32, BoundedIsApproximatelyUniform) {
  Pcg32 rng(11);
  std::vector<int> hist(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++hist[rng.bounded(10)];
  for (const int h : hist) {
    EXPECT_NEAR(static_cast<double>(h), draws / 10.0, draws * 0.01);
  }
}

TEST(Pcg32, Bounded64SmallAndLargeRanges) {
  Pcg32 rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(rng.bounded64(1000), 1000);
    EXPECT_GE(rng.bounded64(1000), 0);
  }
  const index_t big = (index_t{1} << 40) + 17;
  for (int i = 0; i < 100; ++i) {
    const index_t v = rng.bounded64(big);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, big);
  }
}

TEST(Pcg32, NormalHasUnitVarianceRoughly) {
  Pcg32 rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.08);
}

}  // namespace
}  // namespace dms
