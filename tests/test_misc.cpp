// Minibatch scheduling, frontier construction, thread pool, dense matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/threadpool.hpp"
#include "core/frontier.hpp"
#include "core/minibatch.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

TEST(Minibatch, CoversTrainingSetExactlyOnce) {
  std::vector<index_t> train;
  for (index_t i = 0; i < 103; ++i) train.push_back(i * 2);
  const auto batches = make_epoch_batches(train, 10, 1);
  EXPECT_EQ(batches.size(), 11u);
  EXPECT_EQ(batches.back().size(), 3u);
  std::multiset<index_t> seen;
  for (const auto& b : batches) seen.insert(b.begin(), b.end());
  EXPECT_EQ(seen.size(), train.size());
  for (const index_t v : train) EXPECT_EQ(seen.count(v), 1u);
}

TEST(Minibatch, PermutationDiffersAcrossEpochs) {
  std::vector<index_t> train;
  for (index_t i = 0; i < 100; ++i) train.push_back(i);
  const auto e1 = make_epoch_batches(train, 100, 1);
  const auto e2 = make_epoch_batches(train, 100, 2);
  EXPECT_NE(e1[0], e2[0]);
  const auto e1_again = make_epoch_batches(train, 100, 1);
  EXPECT_EQ(e1[0], e1_again[0]);
}

TEST(Minibatch, RejectsNonPositiveBatchSize) {
  EXPECT_THROW(make_epoch_batches({1, 2}, 0, 1), DmsError);
}

TEST(Frontier, RowsLeadAndDuplicatesMerge) {
  const std::vector<index_t> rows = {10, 20};
  const std::vector<std::vector<index_t>> sampled = {{30, 20}, {30, 40}};
  const LayerSample layer = build_layer_sample(rows, sampled);
  EXPECT_EQ(layer.col_vertices, (std::vector<index_t>{10, 20, 30, 40}));
  EXPECT_EQ(layer.adj.rows(), 2);
  EXPECT_EQ(layer.adj.cols(), 4);
  // Row 0 sampled {30, 20} → columns 2 and 1.
  EXPECT_DOUBLE_EQ(layer.adj.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(layer.adj.at(0, 2), 1.0);
  // Row 1 sampled {30, 40} → columns 2 and 3.
  EXPECT_DOUBLE_EQ(layer.adj.at(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(layer.adj.at(1, 3), 1.0);
}

TEST(Frontier, MismatchedRowsThrow) {
  EXPECT_THROW(build_layer_sample({1}, {{2}, {3}}), DmsError);
}

TEST(MinibatchSample, InputVerticesThrowsOnEmptyLayers) {
  // Regression: used to read layers.back() of an empty vector (UB).
  MinibatchSample ms;
  ms.batch_vertices = {1, 2};
  EXPECT_THROW(ms.input_vertices(), DmsError);
}

TEST(MinibatchSample, InputVerticesReturnsLastFrontier) {
  MinibatchSample ms;
  ms.layers.emplace_back();
  ms.layers.back().col_vertices = {4, 5};
  ms.layers.emplace_back();
  ms.layers.back().col_vertices = {7, 8, 9};
  EXPECT_EQ(ms.input_vertices(), (std::vector<index_t>{7, 8, 9}));
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](index_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SerialFallbackWorks) {
  ThreadPool pool(1);
  int sum = 0;
  pool.parallel_for(10, [&](index_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(50,
                                 [](index_t i) {
                                   if (i == 33) throw DmsError("boom");
                                 }),
               DmsError);
  // Pool remains usable after the exception.
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](index_t) { count++; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](index_t) { FAIL(); });
}

TEST(ThreadPool, ResolvePoolSizeAcceptsOnlyStrictPositiveIntegers) {
  EXPECT_EQ(ThreadPool::resolve_pool_size("4", 8), 4);
  EXPECT_EQ(ThreadPool::resolve_pool_size("1", 8), 1);
  // Everything else falls back to the hardware size with a warning.
  EXPECT_EQ(ThreadPool::resolve_pool_size(nullptr, 8), 8);
  EXPECT_EQ(ThreadPool::resolve_pool_size("", 8), 8);
  EXPECT_EQ(ThreadPool::resolve_pool_size("0", 8), 8);
  EXPECT_EQ(ThreadPool::resolve_pool_size("-3", 8), 8);
  EXPECT_EQ(ThreadPool::resolve_pool_size("four", 8), 8);
  EXPECT_EQ(ThreadPool::resolve_pool_size("4x", 8), 8);   // trailing garbage
  EXPECT_EQ(ThreadPool::resolve_pool_size(" 4 ", 8), 8);  // whitespace tail
  EXPECT_EQ(ThreadPool::resolve_pool_size("99999999999999999999", 8), 8);
  // A degenerate hardware report still yields a runnable pool.
  EXPECT_EQ(ThreadPool::resolve_pool_size(nullptr, 0), 1);
  EXPECT_EQ(ThreadPool::resolve_pool_size("junk", -2), 1);
}

TEST(Dense, BasicAccessAndNorm) {
  DenseD d(2, 2);
  d(0, 0) = 3.0;
  d(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(d.norm(), 5.0);
  d.zero();
  EXPECT_DOUBLE_EQ(d.norm(), 0.0);
}

TEST(Dense, MaxAbsDiffRequiresSameShape) {
  EXPECT_THROW(DenseD::max_abs_diff(DenseD(2, 2), DenseD(2, 3)), DmsError);
  DenseD a(2, 2), b(2, 2);
  a(1, 0) = 5.0;
  b(1, 0) = 3.0;
  EXPECT_DOUBLE_EQ(DenseD::max_abs_diff(a, b), 2.0);
}

}  // namespace
}  // namespace dms
