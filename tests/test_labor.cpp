// LABOR (layer-neighbor sampling by per-vertex Poisson thinning), the
// first sampler defined purely as a plan: determinism, sampling semantics,
// the frontier-shrinking property that motivates the algorithm, mode
// parity, and an end-to-end convergence sanity check.
#include <gtest/gtest.h>

#include <set>

#include "core/graphsage.hpp"
#include "core/labor.hpp"
#include "dist/dist_sampler.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

Graph test_graph() { return generate_erdos_renyi(300, 12.0, 71); }

std::vector<std::vector<index_t>> make_batches(index_t n) {
  std::vector<std::vector<index_t>> batches(4);
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 16; ++j) {
      batches[static_cast<std::size_t>(i)].push_back((i * 53 + j * 7) % n);
    }
  }
  return batches;
}

const std::vector<index_t> kIds = {0, 1, 2, 3};

bool samples_equal(const MinibatchSample& a, const MinibatchSample& b) {
  if (a.batch_vertices != b.batch_vertices) return false;
  if (a.layers.size() != b.layers.size()) return false;
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    if (!(a.layers[l].adj == b.layers[l].adj)) return false;
    if (a.layers[l].col_vertices != b.layers[l].col_vertices) return false;
  }
  return true;
}

TEST(Labor, DeterministicPerSeedAndEpoch) {
  const Graph g = test_graph();
  const SamplerConfig cfg{{5, 3}, 1};
  LaborSampler s1(g, cfg);
  LaborSampler s2(g, cfg);
  const auto batches = make_batches(g.num_vertices());
  const auto r1 = s1.sample_bulk(batches, kIds, 11);
  const auto r2 = s2.sample_bulk(batches, kIds, 11);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_TRUE(samples_equal(r1[i], r2[i])) << "batch " << i;
  }
  // A different epoch seed redraws the per-vertex uniforms.
  const auto r3 = s1.sample_bulk(batches, kIds, 12);
  bool any_differs = false;
  for (std::size_t i = 0; i < r1.size(); ++i) {
    if (!samples_equal(r1[i], r3[i])) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Labor, SampledEdgesAreGraphEdgesAndLayersAreWellFormed) {
  const Graph g = test_graph();
  LaborSampler s(g, {{4, 2}, 1});
  const auto out = s.sample_bulk(make_batches(g.num_vertices()), kIds, 21);
  for (const auto& ms : out) {
    ASSERT_EQ(ms.layers.size(), 2u);
    for (const auto& layer : ms.layers) {
      layer.adj.validate();
      ASSERT_EQ(layer.adj.rows(),
                static_cast<index_t>(layer.row_vertices.size()));
      ASSERT_EQ(layer.adj.cols(),
                static_cast<index_t>(layer.col_vertices.size()));
      for (index_t r = 0; r < layer.adj.rows(); ++r) {
        const index_t v = layer.row_vertices[static_cast<std::size_t>(r)];
        for (const index_t c : layer.adj.row_cols(r)) {
          const index_t u = layer.col_vertices[static_cast<std::size_t>(c)];
          EXPECT_GT(g.adjacency().at(v, u), 0.0)
              << "sampled non-edge " << v << "→" << u;
        }
      }
    }
  }
}

TEST(Labor, PerVertexSampleCountTracksTheExpectedFanout) {
  // Each neighbor of v is kept with probability min(1, s/deg(v)), so the
  // per-vertex expected count is min(s, deg(v)). Check the batch-0 layer-0
  // rows aggregated over epochs (law of large numbers at test scale).
  const Graph g = test_graph();
  const index_t s = 4;
  LaborSampler sampler(g, {{s}, 1});
  const std::vector<std::vector<index_t>> batch = {{0, 1, 2, 3, 4, 5, 6, 7}};
  double sampled = 0.0, expected = 0.0;
  const int epochs = 300;
  for (int e = 0; e < epochs; ++e) {
    const auto out =
        sampler.sample_bulk(batch, {0}, static_cast<std::uint64_t>(e));
    const auto& layer = out[0].layers[0];
    for (index_t r = 0; r < layer.adj.rows(); ++r) {
      sampled += static_cast<double>(layer.adj.row_nnz(r));
      expected += std::min<double>(
          s, g.out_degree(layer.row_vertices[static_cast<std::size_t>(r)]));
    }
  }
  EXPECT_NEAR(sampled / expected, 1.0, 0.05);
}

TEST(Labor, FrontierSmallerThanGraphSageAtEqualFanout) {
  // The point of correlated thinning: at equal expected fanout, the union
  // frontier (= feature-fetch volume) undercuts independent per-row
  // sampling. Compare summed input-frontier sizes over several epochs.
  const Graph g = generate_erdos_renyi(400, 16.0, 72);
  const SamplerConfig cfg{{8, 8}, 1};
  LaborSampler labor(g, cfg);
  GraphSageSampler sage(g, cfg);
  std::vector<std::vector<index_t>> batch = {{}};
  for (index_t v = 0; v < 64; ++v) batch[0].push_back(v * 5 % 400);
  std::size_t labor_frontier = 0, sage_frontier = 0;
  for (std::uint64_t e = 0; e < 20; ++e) {
    labor_frontier += labor.sample_bulk(batch, {0}, e)[0].input_vertices().size();
    sage_frontier += sage.sample_bulk(batch, {0}, e)[0].input_vertices().size();
  }
  EXPECT_LT(labor_frontier, sage_frontier);
}

struct GridParam {
  int p, c;
};

class PartitionedLaborSweep : public ::testing::TestWithParam<GridParam> {};

TEST_P(PartitionedLaborSweep, MatchesSingleNodeSampler) {
  const auto [p, c] = GetParam();
  Cluster cluster(ProcessGrid(p, c), CostModel(LinkParams{}));
  const Graph g = test_graph();
  const SamplerConfig cfg{{4, 3}, 1};
  const auto batches = make_batches(g.num_vertices());

  PartitionedLaborSampler dist(g, cluster.grid(), cfg);
  const auto per_row = dist.sample_bulk(cluster, batches, kIds, 2026);

  LaborSampler local(g, cfg);
  const auto ref = local.sample_bulk(batches, kIds, 2026);

  std::size_t seen = 0;
  for (const auto& row : per_row) {
    for (const auto& ms : row) {
      EXPECT_TRUE(samples_equal(ms, ref[seen++]));
    }
  }
  EXPECT_EQ(seen, ref.size());
}

INSTANTIATE_TEST_SUITE_P(Grids, PartitionedLaborSweep,
                         ::testing::Values(GridParam{1, 1}, GridParam{2, 1},
                                           GridParam{4, 2}, GridParam{8, 2}));

TEST(Labor, ConvergesOnPlantedPartition) {
  // End-to-end sanity: a model trained through the LABOR plan learns the
  // planted structure — loss falls and train accuracy beats chance.
  const Dataset ds = make_planted_dataset(/*n=*/512, /*classes=*/4, /*f=*/8,
                                          /*avg_degree=*/8.0, /*p_intra=*/0.85,
                                          /*seed=*/5);
  Cluster cluster(ProcessGrid(2, 1), CostModel(LinkParams{}));
  PipelineConfig cfg;
  cfg.sampler = SamplerKind::kLabor;
  cfg.batch_size = 32;
  cfg.fanouts = {6, 4};
  cfg.hidden = 16;
  cfg.lr = 5e-3f;
  Pipeline pipe(cluster, ds, cfg);
  const EpochStats first = pipe.run_epoch(0);
  EpochStats last = first;
  for (int e = 1; e < 8; ++e) last = pipe.run_epoch(e);
  testutil::expect_epoch_stats_consistent(last);
  EXPECT_LT(last.loss, first.loss);
  EXPECT_GT(last.train_acc, 0.5);  // 4 classes → chance is 0.25
}

TEST(Labor, RejectsBadConfig) {
  const Graph g = test_graph();
  EXPECT_THROW(LaborSampler(g, SamplerConfig{{}, 1}), DmsError);
  EXPECT_THROW(LaborSampler(g, SamplerConfig{{0}, 1}), DmsError);
}

}  // namespace
}  // namespace dms
