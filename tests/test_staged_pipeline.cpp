// Determinism/accounting harness for the staged overlapped executor
// (DESIGN.md §6): for every registered SamplerKind × DistMode the
// overlapped and synchronous paths must produce bit-identical per-epoch
// loss/accuracy (overlap changes only the simulated clock), caching must
// never change training, the cache accounting must cover every requested
// feature row exactly once, and the EpochStats clock invariants must hold.
#include <gtest/gtest.h>

#include "graph/dataset.hpp"
#include "test_util.hpp"
#include "train/pipeline.hpp"

namespace dms {
namespace {

Dataset small_planted() {
  return make_planted_dataset(/*n=*/512, /*classes=*/4, /*f=*/8,
                              /*avg_degree=*/8.0, /*p_intra=*/0.85, /*seed=*/5);
}

PipelineConfig config_for(SamplerKind kind, DistMode mode) {
  PipelineConfig cfg;
  cfg.sampler = kind;
  cfg.mode = mode;
  cfg.batch_size = 32;
  cfg.fanouts = kind == SamplerKind::kGraphSage ? std::vector<index_t>{4, 4}
                                                : std::vector<index_t>{32};
  cfg.hidden = 16;
  cfg.lr = 5e-3f;
  return cfg;
}

std::vector<EpochStats> run_epochs(const Dataset& ds, PipelineConfig cfg,
                                   int epochs) {
  Cluster cluster(ProcessGrid(4, 2), CostModel(LinkParams{}));
  Pipeline pipe(cluster, ds, cfg);
  std::vector<EpochStats> out;
  for (int e = 0; e < epochs; ++e) out.push_back(pipe.run_epoch(e));
  return out;
}

TEST(StagedPipeline, OverlapMatchesSyncBitIdenticallyForEveryKindAndMode) {
  const Dataset ds = small_planted();
  for (const auto& [kind, mode] : SamplerRegistry::instance().registered()) {
    PipelineConfig cfg = config_for(kind, mode);
    cfg.overlap = false;
    const auto sync = run_epochs(ds, cfg, 2);
    cfg.overlap = true;
    const auto ovl = run_epochs(ds, cfg, 2);
    ASSERT_EQ(sync.size(), ovl.size());
    for (std::size_t e = 0; e < sync.size(); ++e) {
      const std::string ctx = to_string(kind) + "/" + to_string(mode) +
                              " epoch " + std::to_string(e);
      EXPECT_EQ(sync[e].loss, ovl[e].loss) << ctx;
      EXPECT_EQ(sync[e].train_acc, ovl[e].train_acc) << ctx;
      EXPECT_EQ(sync[e].overlap_saved, 0.0) << ctx;
      EXPECT_EQ(sync[e].stall, 0.0) << ctx;
      testutil::expect_epoch_stats_consistent(sync[e]);
      testutil::expect_epoch_stats_consistent(ovl[e]);
    }
  }
}

TEST(StagedPipeline, BulkRoundsDoNotChangeLossesInEitherMode) {
  // Rounds are a prefetch/amortization knob; slicing the epoch into bulk
  // rounds must not change any sample (the determinism contract derives
  // randomness from global batch ids, never from the round layout).
  const Dataset ds = small_planted();
  for (const DistMode mode : {DistMode::kReplicated, DistMode::kPartitioned}) {
    PipelineConfig cfg = config_for(SamplerKind::kGraphSage, mode);
    cfg.bulk_k = 0;
    const double all_at_once = run_epochs(ds, cfg, 1)[0].loss;
    cfg.bulk_k = 8;
    const double small_rounds = run_epochs(ds, cfg, 1)[0].loss;
    EXPECT_DOUBLE_EQ(all_at_once, small_rounds) << to_string(mode);
  }
}

TEST(StagedPipeline, CachePoliciesDoNotChangeLosses) {
  // The cache only decides which rows cross the wire; the gathered features
  // are read from the canonical matrix either way.
  const Dataset ds = small_planted();
  PipelineConfig cfg = config_for(SamplerKind::kGraphSage, DistMode::kReplicated);
  const auto base = run_epochs(ds, cfg, 2);
  for (const CachePolicy policy : {CachePolicy::kLru, CachePolicy::kDegreePinned}) {
    cfg.feature_cache = {policy, 64};
    const auto cached = run_epochs(ds, cfg, 2);
    for (std::size_t e = 0; e < base.size(); ++e) {
      EXPECT_EQ(base[e].loss, cached[e].loss);
      EXPECT_EQ(base[e].train_acc, cached[e].train_acc);
      testutil::expect_epoch_stats_consistent(cached[e]);
    }
    // A 64-row cache on a 512-vertex graph must see real traffic reduction.
    EXPECT_GT(cached[1].cache_hits, 0u);
    EXPECT_LT(cached[1].fetch_bytes, base[1].fetch_bytes);
  }
}

TEST(StagedPipeline, CacheAccountingExactlyCoversRequestedRows) {
  const Dataset ds = small_planted();
  for (const auto& [kind, mode] : SamplerRegistry::instance().registered()) {
    PipelineConfig cfg = config_for(kind, mode);
    cfg.feature_cache = {CachePolicy::kLru, 32};
    Cluster cluster(ProcessGrid(4, 2), CostModel(LinkParams{}));
    Pipeline pipe(cluster, ds, cfg);
    const EpochStats s = pipe.run_epoch(0);
    const FeatureCacheStats& total = pipe.features().cache_stats();
    // Every requested row is classified exactly once (hit, miss or local) —
    // both in the cumulative store accounting and the per-epoch stats.
    EXPECT_EQ(total.requested, total.hits + total.misses + total.local)
        << to_string(kind) << "/" << to_string(mode);
    EXPECT_EQ(total.requested, s.cache_hits + s.cache_misses + s.cache_local);
    EXPECT_GT(total.requested, 0u);
  }
}

TEST(StagedPipeline, OverlapHidesPrefetchableTime) {
  // Purely modeled comparison: an enormous compute_scale zeroes out the
  // host-measured kernel times, so both totals are deterministic functions
  // of launch overhead and link bytes — no wall-clock noise. Two single-step
  // bulk rounds: round 1's sampling overhead hides under round 0's unhidden
  // fetch, and the fetches themselves ride the slow links.
  const Dataset ds = small_planted();
  LinkParams link;
  link.launch_overhead = 5e-4;
  link.beta_inter = 1e-7;
  link.beta_intra = 1e-7;
  link.compute_scale = 1e12;
  link.irregular_compute_scale = 1e12;
  PipelineConfig cfg = config_for(SamplerKind::kGraphSage, DistMode::kReplicated);
  cfg.bulk_k = 4;

  cfg.overlap = false;
  Cluster c_sync(ProcessGrid(4, 1), CostModel(link));
  Pipeline sync(c_sync, ds, cfg);
  const EpochStats s_sync = sync.run_epoch(0);

  cfg.overlap = true;
  Cluster c_ovl(ProcessGrid(4, 1), CostModel(link));
  Pipeline ovl(c_ovl, ds, cfg);
  const EpochStats s_ovl = ovl.run_epoch(0);

  EXPECT_EQ(s_sync.loss, s_ovl.loss);
  EXPECT_GT(s_ovl.overlap_saved, 0.0);
  EXPECT_LT(s_ovl.total, s_sync.total);
  testutil::expect_epoch_stats_consistent(s_ovl);
}

}  // namespace
}  // namespace dms
