// Structural sparse operations: transpose, stacking, extraction, NORM, add.
#include <gtest/gtest.h>

#include "sparse/ops.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

using testutil::random_csr;

TEST(Transpose, MatchesDense) {
  const CsrMatrix a = random_csr(12, 9, 0.3, 21);
  const CsrMatrix at = transpose(a);
  at.validate();
  EXPECT_EQ(at.rows(), 9);
  EXPECT_EQ(at.cols(), 12);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      EXPECT_DOUBLE_EQ(a.at(i, j), at.at(j, i));
    }
  }
}

TEST(Transpose, Involution) {
  const CsrMatrix a = random_csr(15, 11, 0.2, 22);
  EXPECT_TRUE(transpose(transpose(a)) == a);
}

TEST(Vstack, ConcatenatesRows) {
  const CsrMatrix a = random_csr(3, 5, 0.5, 23);
  const CsrMatrix b = random_csr(4, 5, 0.5, 24);
  const CsrMatrix s = vstack({a, b});
  s.validate();
  EXPECT_EQ(s.rows(), 7);
  EXPECT_EQ(s.nnz(), a.nnz() + b.nnz());
  for (index_t j = 0; j < 5; ++j) {
    EXPECT_DOUBLE_EQ(s.at(1, j), a.at(1, j));
    EXPECT_DOUBLE_EQ(s.at(5, j), b.at(2, j));
  }
}

TEST(Vstack, RejectsColumnMismatch) {
  EXPECT_THROW(vstack({CsrMatrix(2, 3), CsrMatrix(2, 4)}), DmsError);
  EXPECT_THROW(vstack({}), DmsError);
}

TEST(BlockDiag, PlacesBlocksOnDiagonal) {
  const CsrMatrix a = random_csr(2, 3, 1.0, 25);
  const CsrMatrix b = random_csr(3, 2, 1.0, 26);
  const CsrMatrix d = block_diag({a, b});
  d.validate();
  EXPECT_EQ(d.rows(), 5);
  EXPECT_EQ(d.cols(), 5);
  EXPECT_DOUBLE_EQ(d.at(0, 0), a.at(0, 0));
  EXPECT_DOUBLE_EQ(d.at(2, 3), b.at(0, 0));
  EXPECT_DOUBLE_EQ(d.at(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(d.at(2, 0), 0.0);
}

TEST(RowSlice, ExtractsContiguousRows) {
  const CsrMatrix a = random_csr(10, 6, 0.4, 27);
  const CsrMatrix s = row_slice(a, 3, 7);
  s.validate();
  EXPECT_EQ(s.rows(), 4);
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(s.at(i, j), a.at(i + 3, j));
    }
  }
}

TEST(RowSlice, EmptyAndFullRanges) {
  const CsrMatrix a = random_csr(5, 4, 0.5, 28);
  EXPECT_EQ(row_slice(a, 2, 2).rows(), 0);
  EXPECT_TRUE(row_slice(a, 0, 5) == a);
  EXPECT_THROW(row_slice(a, 3, 2), DmsError);
}

TEST(ExtractRows, GathersWithRepetition) {
  const CsrMatrix a = random_csr(6, 5, 0.5, 29);
  const CsrMatrix g = extract_rows(a, {4, 0, 4});
  g.validate();
  EXPECT_EQ(g.rows(), 3);
  for (index_t j = 0; j < 5; ++j) {
    EXPECT_DOUBLE_EQ(g.at(0, j), a.at(4, j));
    EXPECT_DOUBLE_EQ(g.at(1, j), a.at(0, j));
    EXPECT_DOUBLE_EQ(g.at(2, j), a.at(4, j));
  }
}

TEST(ExtractColumns, RenumbersKeptColumns) {
  const CsrMatrix a = random_csr(4, 8, 0.6, 30);
  const CsrMatrix e = extract_columns(a, {1, 4, 6});
  e.validate();
  EXPECT_EQ(e.cols(), 3);
  for (index_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(e.at(i, 0), a.at(i, 1));
    EXPECT_DOUBLE_EQ(e.at(i, 1), a.at(i, 4));
    EXPECT_DOUBLE_EQ(e.at(i, 2), a.at(i, 6));
  }
}

TEST(ExtractColumns, RejectsUnsorted) {
  const CsrMatrix a = random_csr(2, 4, 0.5, 31);
  EXPECT_THROW(extract_columns(a, {2, 1}), DmsError);
  EXPECT_THROW(extract_columns(a, {0, 0}), DmsError);
}

TEST(DropEmptyColumns, IsThePaperExtractStep) {
  // Figure 2a: Q^{L-1} for batch {1,5} with samples {0,2} and {3,4} has
  // empty columns {1,5}; extraction keeps {0,2,3,4}.
  const CsrMatrix q = CsrMatrix::from_triplets(2, 6, {0, 0, 1, 1}, {0, 2, 3, 4},
                                               {1.0, 1.0, 1.0, 1.0});
  std::vector<index_t> kept;
  const CsrMatrix as = drop_empty_columns(q, &kept);
  as.validate();
  EXPECT_EQ(as.cols(), 4);
  EXPECT_EQ(kept, (std::vector<index_t>{0, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(as.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(as.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(as.at(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(as.at(1, 3), 1.0);
}

TEST(RowSums, SumsValues) {
  const CsrMatrix a =
      CsrMatrix::from_triplets(2, 3, {0, 0, 1}, {0, 2, 1}, {1.5, 2.5, -1.0});
  const auto sums = row_sums(a);
  EXPECT_DOUBLE_EQ(sums[0], 4.0);
  EXPECT_DOUBLE_EQ(sums[1], -1.0);
}

TEST(NormalizeRows, MakesRowsStochastic) {
  CsrMatrix a = random_csr(8, 8, 0.5, 32);
  normalize_rows(a);
  const auto sums = row_sums(a);
  for (index_t r = 0; r < 8; ++r) {
    if (a.row_nnz(r) > 0) EXPECT_NEAR(sums[static_cast<std::size_t>(r)], 1.0, 1e-12);
  }
}

TEST(NormalizeRows, LeavesEmptyRowsAlone) {
  CsrMatrix a(3, 3);
  EXPECT_NO_THROW(normalize_rows(a));
  EXPECT_EQ(a.nnz(), 0);
}

TEST(NonzeroColumns, FindsOccupiedColumns) {
  const CsrMatrix a =
      CsrMatrix::from_triplets(3, 6, {0, 1, 2}, {4, 1, 4}, {1.0, 1.0, 1.0});
  EXPECT_EQ(nonzero_columns(a), (std::vector<index_t>{1, 4}));
}

TEST(DenseRoundTrip, PreservesValues) {
  const CsrMatrix a = random_csr(9, 7, 0.3, 33);
  EXPECT_TRUE(from_dense(to_dense(a)) == a);
}

TEST(CsrAdd, MatchesDenseAddition) {
  const CsrMatrix a = random_csr(10, 10, 0.3, 34);
  const CsrMatrix b = random_csr(10, 10, 0.3, 35);
  const CsrMatrix c = csr_add(a, b);
  c.validate();
  for (index_t i = 0; i < 10; ++i) {
    for (index_t j = 0; j < 10; ++j) {
      EXPECT_DOUBLE_EQ(c.at(i, j), a.at(i, j) + b.at(i, j));
    }
  }
}

TEST(CsrAdd, ShapeMismatchThrows) {
  EXPECT_THROW(csr_add(CsrMatrix(2, 2), CsrMatrix(2, 3)), DmsError);
}

TEST(ColumnWindow, SelectsAndShifts) {
  const CsrMatrix a = random_csr(5, 10, 0.5, 36);
  const CsrMatrix w = column_window(a, 3, 7);
  w.validate();
  EXPECT_EQ(w.cols(), 4);
  for (index_t i = 0; i < 5; ++i) {
    for (index_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(w.at(i, j), a.at(i, j + 3));
    }
  }
}

TEST(OnesLike, SetsPatternValues) {
  const CsrMatrix a = random_csr(4, 4, 0.5, 37);
  const CsrMatrix o = ones_like(a);
  EXPECT_EQ(o.nnz(), a.nnz());
  for (const value_t v : o.vals()) EXPECT_DOUBLE_EQ(v, 1.0);
}

}  // namespace
}  // namespace dms
