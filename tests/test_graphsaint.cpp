// GraphSAINT-RW matrix sampler (graph-wise extension).
#include <gtest/gtest.h>

#include <set>

#include "core/graphsaint.hpp"
#include "graph/dataset.hpp"
#include "graph/generators.hpp"
#include "nn/model.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

TEST(GraphSaint, InducedSubgraphContainsRoots) {
  const Graph g = generate_erdos_renyi(100, 8.0, 71);
  GraphSaintConfig cfg;
  cfg.walk_length = 3;
  GraphSaintSampler sampler(g, cfg);
  const auto ms = sampler.sample_one({5, 17, 42}, 0, 1);
  std::set<index_t> vs(ms.batch_vertices.begin(), ms.batch_vertices.end());
  EXPECT_TRUE(vs.count(5) && vs.count(17) && vs.count(42));
}

TEST(GraphSaint, SubgraphIsExactlyInducedAdjacency) {
  const Graph g = generate_erdos_renyi(80, 10.0, 72);
  GraphSaintConfig cfg;
  cfg.walk_length = 2;
  GraphSaintSampler sampler(g, cfg);
  const auto ms = sampler.sample_one({1, 2, 3, 4}, 0, 9);
  const auto& layer = ms.layers[0];
  // Every induced edge present, nothing else.
  for (std::size_t i = 0; i < layer.row_vertices.size(); ++i) {
    for (std::size_t j = 0; j < layer.col_vertices.size(); ++j) {
      EXPECT_DOUBLE_EQ(layer.adj.at(static_cast<index_t>(i), static_cast<index_t>(j)),
                       g.adjacency().at(layer.row_vertices[i], layer.col_vertices[j]));
    }
  }
}

TEST(GraphSaint, VertexSetBoundedByWalks) {
  const Graph g = generate_erdos_renyi(200, 6.0, 73);
  GraphSaintConfig cfg;
  cfg.walk_length = 4;
  GraphSaintSampler sampler(g, cfg);
  const std::vector<index_t> roots = {0, 10, 20, 30, 40};
  const auto ms = sampler.sample_one(roots, 0, 2);
  // At most roots * (1 + walk_length) distinct vertices.
  EXPECT_LE(ms.batch_vertices.size(), roots.size() * 5);
  EXPECT_GE(ms.batch_vertices.size(), roots.size());
}

TEST(GraphSaint, WalkStepsFollowEdges) {
  // On a directed path graph 0->1->2->3->..., a walk from 0 of length 3
  // must visit exactly {0,1,2,3}.
  CooMatrix coo(8, 8);
  for (index_t v = 0; v + 1 < 8; ++v) coo.push(v, v + 1, 1.0);
  const Graph g{CsrMatrix::from_coo(coo)};
  GraphSaintConfig cfg;
  cfg.walk_length = 3;
  GraphSaintSampler sampler(g, cfg);
  const auto ms = sampler.sample_one({0}, 0, 5);
  EXPECT_EQ(ms.batch_vertices, (std::vector<index_t>{0, 1, 2, 3}));
}

TEST(GraphSaint, DeadEndWalksTerminateGracefully) {
  // Sink vertex: walks stop, no crash, subgraph is just the root.
  CooMatrix coo(4, 4);
  coo.push(1, 2, 1.0);
  const Graph g{CsrMatrix::from_coo(coo)};
  GraphSaintConfig cfg;
  cfg.walk_length = 5;
  GraphSaintSampler sampler(g, cfg);
  const auto ms = sampler.sample_one({3}, 0, 1);
  EXPECT_EQ(ms.batch_vertices, (std::vector<index_t>{3}));
  EXPECT_EQ(ms.layers[0].adj.nnz(), 0);
}

TEST(GraphSaint, EmitsRequestedModelLayers) {
  const Graph g = generate_erdos_renyi(60, 8.0, 74);
  GraphSaintConfig cfg;
  cfg.walk_length = 2;
  cfg.model_layers = 3;
  GraphSaintSampler sampler(g, cfg);
  const auto ms = sampler.sample_one({1, 2}, 0, 3);
  ASSERT_EQ(ms.layers.size(), 3u);
  EXPECT_TRUE(ms.layers[0].adj == ms.layers[2].adj);
}

TEST(GraphSaint, DeterministicPerSeed) {
  const Graph g = generate_erdos_renyi(150, 9.0, 75);
  GraphSaintConfig cfg;
  cfg.walk_length = 3;
  GraphSaintSampler sampler(g, cfg);
  const auto a = sampler.sample_one({7, 8}, 4, 11);
  const auto b = sampler.sample_one({7, 8}, 4, 11);
  EXPECT_EQ(a.batch_vertices, b.batch_vertices);
  const auto c = sampler.sample_one({7, 8}, 4, 12);
  EXPECT_NE(a.batch_vertices, c.batch_vertices);  // overwhelmingly likely
}

TEST(GraphSaint, TrainsWithSageModel) {
  // End-to-end: the induced-subgraph sample drives the standard model.
  const Dataset ds = make_planted_dataset(256, 4, 8, 8.0, 0.85, 6);
  GraphSaintConfig cfg;
  cfg.walk_length = 2;
  cfg.model_layers = 2;
  GraphSaintSampler sampler(ds.graph, cfg);
  const auto ms = sampler.sample_one({0, 50, 100, 150}, 0, 1);

  ModelConfig mc;
  mc.in_dim = 8;
  mc.hidden = 8;
  mc.num_classes = 4;
  mc.num_layers = 2;
  SageModel model(mc);
  DenseF h(static_cast<index_t>(ms.input_vertices().size()), 8);
  for (std::size_t i = 0; i < ms.input_vertices().size(); ++i) {
    std::copy(ds.features.row(ms.input_vertices()[i]),
              ds.features.row(ms.input_vertices()[i]) + 8,
              h.row(static_cast<index_t>(i)));
  }
  std::vector<int> labels;
  for (const index_t v : ms.batch_vertices) {
    labels.push_back(ds.labels[static_cast<std::size_t>(v)]);
  }
  const LossResult res = model.train_step(ms, h, labels);
  EXPECT_GT(res.loss, 0.0);
}

TEST(GraphSaint, RejectsBadConfig) {
  const Graph g = generate_erdos_renyi(10, 2.0, 76);
  GraphSaintConfig bad;
  bad.walk_length = 0;
  EXPECT_THROW(GraphSaintSampler(g, bad), DmsError);
  bad.walk_length = 1;
  bad.model_layers = 0;
  EXPECT_THROW(GraphSaintSampler(g, bad), DmsError);
}

}  // namespace
}  // namespace dms
