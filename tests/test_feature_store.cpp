// 1.5D feature store: data correctness of fetch_all and the c-scaling of
// its communication cost (the §8.1.2 claim).
#include <gtest/gtest.h>

#include "train/feature_store.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

DenseF make_features(index_t n, index_t f) {
  DenseF h(n, f);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < f; ++j) {
      h(i, j) = static_cast<float>(i * 100 + j);
    }
  }
  return h;
}

TEST(FeatureStore, FetchReturnsRequestedRows) {
  Cluster cluster(ProcessGrid(4, 2), CostModel(LinkParams{}));
  const DenseF h = make_features(64, 4);
  FeatureStore store(cluster.grid(), h);
  std::vector<std::vector<index_t>> wanted = {
      {0, 63}, {5}, {}, {10, 11, 12}};
  const auto out = store.fetch_all(cluster, wanted);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].rows(), 2);
  EXPECT_FLOAT_EQ(out[0](0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out[0](1, 0), 6300.0f);
  EXPECT_FLOAT_EQ(out[1](0, 3), 503.0f);
  EXPECT_EQ(out[2].rows(), 0);
  EXPECT_FLOAT_EQ(out[3](2, 1), 1201.0f);
}

TEST(FeatureStore, LocalRowsCostNothing) {
  // A rank requesting only rows in its own block row communicates nothing.
  Cluster cluster(ProcessGrid(4, 1), CostModel(LinkParams{}));
  const DenseF h = make_features(40, 2);
  FeatureStore store(cluster.grid(), h);
  // Block rows: [0,10) on rank0, [10,20) rank1, etc.
  std::vector<std::vector<index_t>> wanted = {{0, 1}, {10, 11}, {20}, {30}};
  store.fetch_all(cluster, wanted);
  EXPECT_EQ(cluster.comm_stats().at("fetch").bytes, 0u);
}

TEST(FeatureStore, HigherReplicationReducesFetchTime) {
  // §8.1.2: "our feature fetching step scales with our replication factor
  // c". Same requests, p=8, c ∈ {1,2,4} — higher c → fewer blocks per
  // column → more locally available rows → less traffic.
  const DenseF h = make_features(256, 8);
  std::vector<double> times;
  for (const int c : {1, 2, 4}) {
    Cluster cluster(ProcessGrid(8, c), CostModel(LinkParams{}));
    FeatureStore store(cluster.grid(), h);
    std::vector<std::vector<index_t>> wanted(8);
    Pcg32 rng(7);
    for (auto& w : wanted) {
      for (int i = 0; i < 64; ++i) w.push_back(rng.bounded64(256));
    }
    store.fetch_all(cluster, wanted);
    times.push_back(cluster.comm_stats().at("fetch").seconds);
  }
  EXPECT_GT(times[0], times[1]);
  EXPECT_GT(times[1], times[2]);
}

TEST(FeatureStore, BlockBytesSumToWholeMatrix) {
  Cluster cluster(ProcessGrid(4, 2), CostModel(LinkParams{}));
  const DenseF h = make_features(30, 6);
  FeatureStore store(cluster.grid(), h);
  std::size_t total = 0;
  for (index_t i = 0; i < cluster.grid().rows(); ++i) total += store.block_bytes(i);
  EXPECT_EQ(total, 30u * 6u * sizeof(float));
}

TEST(FeatureStore, WrongRequestCountThrows) {
  Cluster cluster(ProcessGrid(2, 1), CostModel(LinkParams{}));
  const DenseF h = make_features(8, 2);
  FeatureStore store(cluster.grid(), h);
  std::vector<std::vector<index_t>> wanted = {{0}};
  EXPECT_THROW(store.fetch_all(cluster, wanted), DmsError);
}

TEST(FeatureStore, FetchAllRejectsOutOfRangeRows) {
  // An out-of-range id used to read past the feature matrix; it must throw
  // like gather_rows does, before any row is copied.
  Cluster cluster(ProcessGrid(2, 1), CostModel(LinkParams{}));
  const DenseF h = make_features(8, 2);
  FeatureStore store(cluster.grid(), h);
  std::vector<std::vector<index_t>> too_big = {{0, 8}, {}};
  EXPECT_THROW(store.fetch_all(cluster, too_big), DmsError);
  std::vector<std::vector<index_t>> negative = {{}, {-1}};
  EXPECT_THROW(store.fetch_all(cluster, negative), DmsError);
  // In-range requests on the same store still succeed.
  std::vector<std::vector<index_t>> ok = {{7}, {0}};
  EXPECT_EQ(store.fetch_all(cluster, ok).size(), 2u);
}

}  // namespace
}  // namespace dms
