// Cross-module integration tests: the two distribution strategies agree
// end-to-end, and every pipeline variant actually learns.
#include <gtest/gtest.h>

#include "baselines/quiver_sim.hpp"
#include "graph/dataset.hpp"
#include "test_util.hpp"
#include "train/pipeline.hpp"

namespace dms {
namespace {

Dataset dataset() {
  return make_planted_dataset(512, 4, 8, 8.0, 0.85, 31);
}

TEST(Integration, ReplicatedAndPartitionedTrainIdenticallyAtC1) {
  // With c=1 the batch-to-rank assignment of the two modes coincides and the
  // samplers are bit-identical, so the loss trajectories must match exactly.
  const Dataset ds = dataset();
  PipelineConfig cfg;
  cfg.batch_size = 32;
  cfg.fanouts = {4, 4};
  cfg.hidden = 16;

  Cluster c_rep(ProcessGrid(4, 1), CostModel(LinkParams{}));
  cfg.mode = DistMode::kReplicated;
  Pipeline rep(c_rep, ds, cfg);

  Cluster c_part(ProcessGrid(4, 1), CostModel(LinkParams{}));
  cfg.mode = DistMode::kPartitioned;
  Pipeline part(c_part, ds, cfg);

  for (int e = 0; e < 3; ++e) {
    const double lr = rep.run_epoch(e).loss;
    const double lp = part.run_epoch(e).loss;
    EXPECT_DOUBLE_EQ(lr, lp) << "epoch " << e;
  }
}

TEST(Integration, PartitionedPipelineLearns) {
  const Dataset ds = dataset();
  Cluster cluster(ProcessGrid(8, 2), CostModel(LinkParams{}));
  PipelineConfig cfg;
  cfg.mode = DistMode::kPartitioned;
  cfg.batch_size = 32;
  cfg.fanouts = {4, 4};
  cfg.hidden = 16;
  cfg.lr = 1e-2f;
  Pipeline pipe(cluster, ds, cfg);
  const double first = pipe.run_epoch(0).loss;
  double last = first;
  for (int e = 1; e < 6; ++e) last = pipe.run_epoch(e).loss;
  EXPECT_LT(last, first * 0.7);
  EXPECT_GT(pipe.evaluate(ds.test_idx, {8, 8}), 0.5);
}

TEST(Integration, QuiverBaselineLearns) {
  // The baseline must be a *fair* comparator: same model machinery, really
  // training. Its loss should fall like ours does.
  const Dataset ds = dataset();
  Cluster cluster(ProcessGrid(4, 1), CostModel(LinkParams{}));
  QuiverConfig cfg;
  cfg.batch_size = 32;
  cfg.fanouts = {4, 4};
  cfg.hidden = 16;
  cfg.lr = 1e-2f;
  QuiverSim quiver(cluster, ds, cfg);
  const double first = quiver.run_epoch(0).loss;
  double last = first;
  for (int e = 1; e < 6; ++e) last = quiver.run_epoch(e).loss;
  EXPECT_LT(last, first * 0.7);
}

TEST(Integration, EpochStatsAreConsistentAcrossGridShapes) {
  const Dataset ds = dataset();
  PipelineConfig cfg;
  cfg.batch_size = 32;
  cfg.fanouts = {4, 4};
  cfg.hidden = 16;
  for (const auto& [p, c] :
       std::vector<std::pair<int, int>>{{1, 1}, {2, 1}, {4, 2}, {8, 4}}) {
    Cluster cluster(ProcessGrid(p, c), CostModel(LinkParams{}));
    Pipeline pipe(cluster, ds, cfg);
    const EpochStats s = pipe.run_epoch(0);
    EXPECT_GT(s.total, 0.0) << "p=" << p;
    // Propagation is never hidden; only sampling/fetch can be overlapped.
    EXPECT_GE(s.total, s.propagation - 1e-9) << "p=" << p;
    testutil::expect_epoch_stats_consistent(s);
    EXPECT_GT(s.train_acc, 0.0) << "p=" << p;
  }
}

}  // namespace
}  // namespace dms
