// CachePolicy::kPreSample (DESIGN.md §14): the warmup-measured hotness cache
// pins a deterministic row set, never changes what training computes (losses
// bit-identical to uncached for every distribution mode, zero capacity
// degenerates exactly), bills its one-time warmup cost to the first epoch
// only, and its measured hotness matches or beats the degree proxy that
// kDegreePinned pins outright.
#include <gtest/gtest.h>

#include <vector>

#include "graph/dataset.hpp"
#include "test_util.hpp"
#include "train/pipeline.hpp"

namespace dms {
namespace {

Dataset small_planted() {
  return make_planted_dataset(/*n=*/512, /*classes=*/4, /*f=*/8,
                              /*avg_degree=*/8.0, /*p_intra=*/0.85, /*seed=*/5);
}

PipelineConfig cache_config(CachePolicy policy, index_t capacity) {
  PipelineConfig cfg;
  cfg.batch_size = 32;
  cfg.fanouts = {4, 4};
  cfg.hidden = 16;
  cfg.feature_cache = {policy, capacity};
  return cfg;
}

TEST(PreSample, PinnedSetIsDeterministicAndReplicatedAcrossRanks) {
  const Dataset ds = small_planted();
  const PipelineConfig cfg = cache_config(CachePolicy::kPreSample, 64);
  Cluster c1(ProcessGrid(4, 2), CostModel(LinkParams{}));
  Cluster c2(ProcessGrid(4, 2), CostModel(LinkParams{}));
  Pipeline p1(c1, ds, cfg);
  Pipeline p2(c2, ds, cfg);
  const std::vector<index_t> pinned = p1.features().cache(0).pinned_rows();
  ASSERT_EQ(pinned.size(), 64u);
  for (int r = 0; r < c1.size(); ++r) {
    // Same warmup, same admission: every rank of every identically-configured
    // pipeline pins the same rows.
    EXPECT_EQ(p1.features().cache(r).pinned_rows(), pinned) << "rank " << r;
    EXPECT_EQ(p2.features().cache(r).pinned_rows(), pinned) << "rank " << r;
  }
}

TEST(PreSample, LossesBitIdenticalToUncachedForEveryMode) {
  const Dataset ds = small_planted();
  for (const DistMode mode : {DistMode::kReplicated, DistMode::kPartitioned,
                              DistMode::kDisaggregated}) {
    Cluster c_none(ProcessGrid(4, 2), CostModel(LinkParams{}));
    Cluster c_pre(ProcessGrid(4, 2), CostModel(LinkParams{}));
    PipelineConfig cfg = cache_config(CachePolicy::kNone, 0);
    cfg.mode = mode;
    Pipeline uncached(c_none, ds, cfg);
    cfg.feature_cache = {CachePolicy::kPreSample, 64};
    Pipeline presample(c_pre, ds, cfg);
    for (int e = 0; e < 2; ++e) {
      const EpochStats a = uncached.run_epoch(e);
      const EpochStats b = presample.run_epoch(e);
      EXPECT_DOUBLE_EQ(a.loss, b.loss) << to_string(mode) << " epoch " << e;
      EXPECT_DOUBLE_EQ(a.train_acc, b.train_acc) << to_string(mode);
      testutil::expect_epoch_stats_consistent(b);
      // The cache saves fetch traffic; it never adds any.
      EXPECT_LE(b.fetch_bytes, a.fetch_bytes) << to_string(mode);
    }
  }
}

TEST(PreSample, ZeroCapacityIsBitEqualToUncached) {
  // Capacity 0 disables the policy entirely: no warmup pass, no warmup
  // billing, the same clock and the same bytes as a cacheless run.
  const Dataset ds = small_planted();
  Cluster c_none(ProcessGrid(4, 2), CostModel(LinkParams{}));
  Cluster c_zero(ProcessGrid(4, 2), CostModel(LinkParams{}));
  Pipeline none(c_none, ds, cache_config(CachePolicy::kNone, 0));
  Pipeline zero(c_zero, ds, cache_config(CachePolicy::kPreSample, 0));
  for (int e = 0; e < 2; ++e) {
    const EpochStats a = none.run_epoch(e);
    const EpochStats b = zero.run_epoch(e);
    EXPECT_DOUBLE_EQ(a.loss, b.loss);
    // Compute phases are host-timed (noisy across runs); the modeled comm
    // clock and the byte accounting are deterministic and must be bit-equal.
    EXPECT_DOUBLE_EQ(a.comm_phases.at("fetch"), b.comm_phases.at("fetch"));
    EXPECT_EQ(a.fetch_bytes, b.fetch_bytes);
    EXPECT_EQ(b.cache_hits, 0u);
    EXPECT_EQ(b.warmup, 0.0);
  }
}

TEST(PreSample, WarmupBilledToFirstEpochOnly) {
  const Dataset ds = small_planted();
  Cluster cluster(ProcessGrid(4, 2), CostModel(LinkParams{}));
  Pipeline pipe(cluster, ds, cache_config(CachePolicy::kPreSample, 64));
  const EpochStats first = pipe.run_epoch(0);
  EXPECT_GT(first.warmup, 0.0);
  testutil::expect_epoch_stats_consistent(first);
  const EpochStats second = pipe.run_epoch(1);
  EXPECT_EQ(second.warmup, 0.0);
  testutil::expect_epoch_stats_consistent(second);

  // Every other policy bills no warmup at all.
  Cluster c_deg(ProcessGrid(4, 2), CostModel(LinkParams{}));
  Pipeline deg(c_deg, ds, cache_config(CachePolicy::kDegreePinned, 64));
  EXPECT_EQ(deg.run_epoch(0).warmup, 0.0);
}

TEST(PreSample, MeasuredHotnessMatchesOrBeatsDegreeProxy) {
  // Same capacity, same placement, same blocks: requested - local is
  // identical for the two pinned policies, so comparing raw hit counts
  // compares hit rates exactly (integer arithmetic, no fp tolerance).
  const Dataset ds = small_planted();
  Cluster c_deg(ProcessGrid(4, 2), CostModel(LinkParams{}));
  Cluster c_pre(ProcessGrid(4, 2), CostModel(LinkParams{}));
  Pipeline deg(c_deg, ds, cache_config(CachePolicy::kDegreePinned, 64));
  Pipeline pre(c_pre, ds, cache_config(CachePolicy::kPreSample, 64));
  std::size_t deg_hits = 0, pre_hits = 0;
  for (int e = 0; e < 2; ++e) {
    const EpochStats a = deg.run_epoch(e);
    const EpochStats b = pre.run_epoch(e);
    EXPECT_EQ(a.cache_hits + a.cache_misses, b.cache_hits + b.cache_misses);
    // Pinned-only policies admit nothing dynamically: every hit is a
    // pinned hit.
    EXPECT_EQ(a.cache_pinned_hits, a.cache_hits);
    EXPECT_EQ(b.cache_pinned_hits, b.cache_hits);
    deg_hits += a.cache_hits;
    pre_hits += b.cache_hits;
  }
  EXPECT_GE(pre_hits, deg_hits);
}

}  // namespace
}  // namespace dms
