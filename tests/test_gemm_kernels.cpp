// Cross-kernel bit-identity of the hot-path kernels (DESIGN.md §7): the
// blocked GEMM panel kernels against their scalar references across tile
// boundaries, the parallel epilogues, the fixed-order column_sums
// reduction, and the parallel two-pass ITS against a serial reference.
// CI reruns this binary at DMS_THREADS 1 and 4: every assertion here is an
// exact-bits comparison, so passing at both pins thread-count independence.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "common/workspace.hpp"
#include "core/its.hpp"
#include "nn/gemm.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

/// Random matrix in [-0.5, 0.5); zero_frac entries forced to exactly 0.0f
/// (the ReLU-sparse pattern whose skip path the references special-case).
DenseF random_dense(index_t rows, index_t cols, std::uint64_t seed,
                    double zero_frac = 0.0) {
  DenseF m(rows, cols);
  Pcg32 rng(seed);
  float* d = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) {
    d[i] = static_cast<float>(rng.uniform() - 0.5);
    if (zero_frac > 0.0 && rng.uniform() < zero_frac) d[i] = 0.0f;
  }
  return m;
}

// Dimensions straddling every blocking boundary: the MR=4/8 row tiles, the
// 16-column vector tiles, and the 64-row parallel panels.
const index_t kSizes[] = {1, 2, 3, 5, 8, 15, 16, 17, 33, 63, 64, 65, 130};

TEST(GemmKernels, MatmulBitIdenticalToReferenceAcrossBlockSizes) {
  for (const index_t m : kSizes) {
    for (const index_t n : kSizes) {
      const index_t k = (m + n) % 37 + 1;
      const DenseF a = random_dense(m, k, 1000 + m * 7 + n, 0.3);
      const DenseF b = random_dense(k, n, 2000 + m + n * 5);
      EXPECT_TRUE(matmul(a, b) == matmul_reference(a, b))
          << "m=" << m << " k=" << k << " n=" << n;
    }
  }
}

TEST(GemmKernels, MatmulTnBitIdenticalToReference) {
  for (const index_t m : kSizes) {
    for (const index_t n : kSizes) {
      const index_t k = (2 * m + n) % 41 + 1;
      const DenseF a = random_dense(k, m, 3000 + m * 3 + n, 0.3);
      const DenseF b = random_dense(k, n, 4000 + m + n * 11);
      EXPECT_TRUE(matmul_tn(a, b) == matmul_tn_reference(a, b))
          << "m=" << m << " k=" << k << " n=" << n;
    }
  }
}

TEST(GemmKernels, MatmulNtBitIdenticalToReference) {
  for (const index_t m : kSizes) {
    for (const index_t n : kSizes) {
      const index_t k = (m + 3 * n) % 29 + 1;
      const DenseF a = random_dense(m, k, 5000 + m * 13 + n, 0.3);
      const DenseF b = random_dense(n, k, 6000 + m + n * 17);
      EXPECT_TRUE(matmul_nt(a, b) == matmul_nt_reference(a, b))
          << "m=" << m << " k=" << k << " n=" << n;
    }
  }
}

TEST(GemmKernels, DegenerateShapes) {
  // Zero-dimension products must produce empty (all-zero) outputs.
  const DenseF a0 = random_dense(0, 5, 1);
  const DenseF b = random_dense(5, 7, 2);
  EXPECT_EQ(matmul(a0, b).rows(), 0);
  const DenseF a = random_dense(4, 0, 3);
  const DenseF b0 = random_dense(0, 7, 4);
  const DenseF c = matmul(a, b0);
  EXPECT_EQ(c.rows(), 4);
  EXPECT_EQ(c.cols(), 7);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c.data()[i], 0.0f);
  EXPECT_THROW(matmul(random_dense(2, 3, 5), random_dense(4, 2, 6)), DmsError);
}

TEST(GemmKernels, EpiloguesBitIdenticalToSerial) {
  // Spans the parallel cutoff (1<<15 elements) in both directions.
  for (const index_t rows : {7, 130, 700}) {
    const index_t cols = 65;
    const DenseF x = random_dense(rows, cols, 70 + rows, 0.3);
    const DenseF y = random_dense(rows, cols, 80 + rows, 0.4);
    const DenseF bias = random_dense(1, cols, 90 + rows);

    DenseF c1 = x, c2 = x;
    {  // axpy
      float* cd = c1.data();
      const float* ad = y.data();
      for (std::size_t i = 0; i < c1.size(); ++i) cd[i] += 0.37f * ad[i];
      axpy(c2, y, 0.37f);
      EXPECT_TRUE(c1 == c2) << "axpy rows=" << rows;
    }
    {  // relu
      c1 = x;
      c2 = x;
      float* d = c1.data();
      for (std::size_t i = 0; i < c1.size(); ++i) d[i] = d[i] > 0.0f ? d[i] : 0.0f;
      relu_inplace(c2);
      EXPECT_TRUE(c1 == c2) << "relu rows=" << rows;
    }
    {  // relu backward
      DenseF d1 = y, d2 = y;
      float* dd = d1.data();
      const float* yd = x.data();
      for (std::size_t i = 0; i < d1.size(); ++i) {
        if (yd[i] <= 0.0f) dd[i] = 0.0f;
      }
      relu_backward_inplace(d2, x);
      EXPECT_TRUE(d1 == d2) << "relu_backward rows=" << rows;
    }
    {  // add_bias
      c1 = x;
      c2 = x;
      for (index_t i = 0; i < rows; ++i) {
        float* row = c1.row(i);
        for (index_t j = 0; j < cols; ++j) row[j] += bias.row(0)[j];
      }
      add_bias_inplace(c2, bias);
      EXPECT_TRUE(c1 == c2) << "add_bias rows=" << rows;
    }
  }
}

/// The documented column_sums order: 128-row blocks summed row-ascending,
/// block partials combined in ascending block order.
DenseF column_sums_fixed_order_reference(const DenseF& a) {
  constexpr index_t kBlockRows = 128;
  DenseF s(1, a.cols());
  float* sd = s.row(0);
  const index_t nblocks = std::max<index_t>(1, ceil_div(a.rows(), kBlockRows));
  for (index_t blk = 0; blk < nblocks; ++blk) {
    DenseF partial(1, a.cols());
    float* pd = partial.row(0);
    const index_t r1 = std::min<index_t>(a.rows(), (blk + 1) * kBlockRows);
    for (index_t i = blk * kBlockRows; i < r1; ++i) {
      const float* row = a.row(i);
      for (index_t j = 0; j < a.cols(); ++j) pd[j] += row[j];
    }
    for (index_t j = 0; j < a.cols(); ++j) sd[j] += pd[j];
  }
  return s;
}

TEST(GemmKernels, ColumnSumsMatchesFixedBlockOrderAtAnyThreadCount) {
  for (const index_t rows : {1, 64, 128, 129, 500, 1111}) {
    const DenseF a = random_dense(rows, 33, 300 + rows, 0.2);
    EXPECT_TRUE(column_sums(a) == column_sums_fixed_order_reference(a))
        << "rows=" << rows;
  }
}

TEST(GemmKernels, ColumnSumsSingleBlockEqualsPlainSerialSum) {
  // Below one block the fixed order degenerates to the pre-blocking
  // row-ascending serial sum — the shapes every training config uses.
  const DenseF a = random_dense(128, 19, 77);
  DenseF s(1, a.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) s.row(0)[j] += a(i, j);
  }
  EXPECT_TRUE(column_sums(a) == s);
}

// ---------------------------------------------------------------------------
// ITS: the parallel two-pass sampler must bit-equal the serial reference.
// ---------------------------------------------------------------------------

/// The pre-parallelization serial path: its_sample_one per row, appended in
/// row order.
CsrMatrix its_sample_rows_serial_reference(const CsrMatrix& p, index_t s,
                                           const RowSeedFn& row_seed) {
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(p.rows()) + 1, 0);
  std::vector<index_t> colidx;
  std::vector<value_t> vals;
  std::vector<value_t> prefix;
  std::vector<index_t> picked;
  std::vector<char> chosen;
  for (index_t r = 0; r < p.rows(); ++r) {
    const auto rvals = p.row_vals(r);
    const auto rcols = p.row_cols(r);
    prefix.assign(1, 0.0);
    for (const value_t v : rvals) prefix.push_back(prefix.back() + std::max(v, 0.0));
    its_sample_one(prefix, s, row_seed(r), &picked, chosen);
    for (const index_t local : picked) {
      colidx.push_back(rcols[static_cast<std::size_t>(local)]);
      vals.push_back(1.0);
    }
    rowptr[static_cast<std::size_t>(r) + 1] = static_cast<nnz_t>(colidx.size());
  }
  return CsrMatrix(p.rows(), p.cols(), std::move(rowptr), std::move(colidx),
                   std::move(vals));
}

TEST(ItsParallel, BitEqualsSerialReference) {
  // Shapes spanning skewed row sizes, zero-mass rows, and s regimes; the
  // property must hold for any thread count (CI pins 1 and 4).
  for (const auto& [rows, cols, density, s] :
       std::vector<std::tuple<index_t, index_t, double, index_t>>{
           {1, 10, 0.5, 3},
           {17, 40, 0.3, 2},
           {64, 200, 0.1, 5},
           {257, 300, 0.05, 4},
           {100, 1000, 0.02, 100}}) {
    const CsrMatrix p =
        testutil::random_csr(rows, cols, density, 7000 + rows + s);
    const auto seed_fn = [rows = rows](index_t r) {
      return derive_seed(991, static_cast<std::uint64_t>(r) * 3 + static_cast<std::uint64_t>(rows));
    };
    const CsrMatrix serial = its_sample_rows_serial_reference(p, s, seed_fn);
    const CsrMatrix parallel = its_sample_rows(p, s, seed_fn);
    EXPECT_TRUE(serial == parallel) << "rows=" << rows << " s=" << s;
  }
}

TEST(ItsParallel, ZeroAndNegativeMassRowsSampleNothingFromThem) {
  // Rows whose values are all zero/negative must come out empty, exactly as
  // the serial path produced them.
  CsrMatrix p = CsrMatrix::from_triplets(
      3, 5, {0, 0, 1, 1, 2, 2}, {0, 3, 1, 4, 0, 2},
      {1.0, 2.0, 0.0, -1.0, 0.5, 0.5});
  const CsrMatrix q = its_sample_rows(p, 2, std::uint64_t{5});
  EXPECT_EQ(q.row_nnz(0), 2);
  EXPECT_EQ(q.row_nnz(1), 0);  // no positive mass
  EXPECT_EQ(q.row_nnz(2), 2);
  EXPECT_TRUE(q == its_sample_rows_serial_reference(
                       p, 2, [](index_t r) {
                         return derive_seed(5, static_cast<std::uint64_t>(r));
                       }));
}

TEST(ItsParallel, SharedWorkspaceReuseDoesNotChangeResults) {
  Workspace ws;
  const CsrMatrix p1 = testutil::random_csr(80, 120, 0.2, 901);
  const CsrMatrix p2 = testutil::random_csr(33, 500, 0.1, 902);
  const CsrMatrix fresh1 = its_sample_rows(p1, 4, std::uint64_t{31});
  const CsrMatrix fresh2 = its_sample_rows(p2, 9, std::uint64_t{32});
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(its_sample_rows(p1, 4, std::uint64_t{31}, &ws) == fresh1);
    EXPECT_TRUE(its_sample_rows(p2, 9, std::uint64_t{32}, &ws) == fresh2);
  }
}

TEST(ItsSampleOne, ScratchReuseAcrossSeedsIsStable) {
  std::vector<value_t> prefix{0.0};
  Pcg32 rng(55);
  for (int i = 0; i < 200; ++i) prefix.push_back(prefix.back() + rng.uniform());
  std::vector<char> reused;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    std::vector<index_t> with_reused, with_fresh;
    std::vector<char> fresh;
    its_sample_one(prefix, 7, seed, &with_reused, reused);
    its_sample_one(prefix, 7, seed, &with_fresh, fresh);
    EXPECT_EQ(with_reused, with_fresh);
  }
}

}  // namespace
}  // namespace dms
