// Unified sampler factory: every registered (SamplerKind, DistMode)
// combination constructs and samples through the common MatrixSampler
// interface, seeding is deterministic, unregistered combinations are
// rejected, and the registry is runtime-extensible.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/fastgcn.hpp"
#include "dist/sampler_factory.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

Graph test_graph() { return generate_erdos_renyi(120, 8.0, 41); }

// GraphSAINT and node2vec sample the induced vertex set of random walks
// instead of fixed-fanout neighbor layers, so the layer-wise invariants
// below don't apply to them (see DESIGN.md §11). PinSAGE is layer-wise —
// its walks only precompute the importance graph it samples from.
bool is_walk_kind(SamplerKind kind) {
  return kind == SamplerKind::kGraphSaint || kind == SamplerKind::kNode2Vec;
}

SamplerContext make_context(const ProcessGrid* grid = nullptr) {
  SamplerContext ctx;
  ctx.config = SamplerConfig{{4, 3}, /*seed=*/1};
  ctx.grid = grid;
  return ctx;
}

bool samples_equal(const MinibatchSample& a, const MinibatchSample& b) {
  if (a.batch_vertices != b.batch_vertices) return false;
  if (a.layers.size() != b.layers.size()) return false;
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    if (!(a.layers[l].adj == b.layers[l].adj)) return false;
    if (a.layers[l].col_vertices != b.layers[l].col_vertices) return false;
  }
  return true;
}

TEST(SamplerFactory, EveryRegisteredCombinationConstructsAndSamples) {
  const Graph g = test_graph();
  const ProcessGrid grid(4, 2);
  const std::vector<index_t> batch = {0, 1, 2, 3};
  for (const auto& [kind, mode] : SamplerRegistry::instance().registered()) {
    SamplerContext ctx = make_context(&grid);
    const auto sampler = make_sampler(kind, mode, g, ctx);
    ASSERT_NE(sampler, nullptr) << to_string(kind) << "/" << to_string(mode);
    const MinibatchSample ms = sampler->sample_one(batch, 0, /*epoch_seed=*/11);
    if (is_walk_kind(kind)) {
      // Walk samplers run unit-fanout model layers over the walk-induced
      // vertex set; the batch roots are always part of that set.
      EXPECT_EQ(sampler->config().fanouts,
                std::vector<index_t>(ctx.config.fanouts.size(), 1));
      for (const index_t root : batch) {
        EXPECT_TRUE(std::binary_search(ms.batch_vertices.begin(),
                                       ms.batch_vertices.end(), root))
            << to_string(kind) << "/" << to_string(mode) << " root " << root;
      }
    } else {
      EXPECT_EQ(sampler->config().fanouts, ctx.config.fanouts);
      EXPECT_EQ(ms.batch_vertices, batch);
    }
    EXPECT_EQ(ms.layers.size(), ctx.config.fanouts.size())
        << to_string(kind) << "/" << to_string(mode);
    EXPECT_FALSE(ms.input_vertices().empty());
  }
}

TEST(SamplerFactory, SeedDeterminismPerCombination) {
  const Graph g = test_graph();
  const ProcessGrid grid(4, 2);
  const std::vector<std::vector<index_t>> batches = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  const std::vector<index_t> ids = {0, 1};
  for (const auto& [kind, mode] : SamplerRegistry::instance().registered()) {
    const SamplerContext ctx = make_context(&grid);
    // Two samplers with identical SamplerConfig (incl. seed) sample
    // bit-identically; a different epoch seed changes the samples.
    const auto s1 = make_sampler(kind, mode, g, ctx);
    const auto s2 = make_sampler(kind, mode, g, ctx);
    const auto r1 = s1->sample_bulk(batches, ids, /*epoch_seed=*/21);
    const auto r2 = s2->sample_bulk(batches, ids, /*epoch_seed=*/21);
    ASSERT_EQ(r1.size(), r2.size());
    for (std::size_t i = 0; i < r1.size(); ++i) {
      EXPECT_TRUE(samples_equal(r1[i], r2[i]))
          << to_string(kind) << "/" << to_string(mode) << " batch " << i;
    }
    const auto r3 = s1->sample_bulk(batches, ids, /*epoch_seed=*/22);
    bool any_differs = false;
    for (std::size_t i = 0; i < r1.size(); ++i) {
      if (!samples_equal(r1[i], r3[i])) any_differs = true;
    }
    EXPECT_TRUE(any_differs) << to_string(kind) << "/" << to_string(mode);
  }
}

TEST(SamplerFactory, PartitionedMatchesReplicatedThroughCommonInterface) {
  // The determinism contract, observed through the factory surface alone.
  const Graph g = test_graph();
  const ProcessGrid grid(8, 2);
  const std::vector<std::vector<index_t>> batches = {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}};
  const std::vector<index_t> ids = {0, 1, 2};
  for (const SamplerKind kind :
       {SamplerKind::kGraphSage, SamplerKind::kLadies, SamplerKind::kFastGcn,
        SamplerKind::kLabor, SamplerKind::kGraphSaint, SamplerKind::kNode2Vec,
        SamplerKind::kPinSage}) {
    SamplerContext ctx = make_context(&grid);
    const auto rep = make_sampler(kind, DistMode::kReplicated, g, ctx);
    const auto part = make_sampler(kind, DistMode::kPartitioned, g, ctx);
    const auto rr = rep->sample_bulk(batches, ids, 33);
    const auto rp = part->sample_bulk(batches, ids, 33);
    ASSERT_EQ(rr.size(), rp.size());
    for (std::size_t i = 0; i < rr.size(); ++i) {
      EXPECT_TRUE(samples_equal(rr[i], rp[i])) << to_string(kind) << " batch " << i;
    }
  }
}

TEST(SamplerFactory, EveryKindRegisteredInBothModes) {
  // The plan IR closed the historical gaps (partitioned FastGCN, LABOR):
  // every algorithm × execution mode is constructible, including the walk
  // kinds added with the walk engine.
  for (const SamplerKind kind :
       {SamplerKind::kGraphSage, SamplerKind::kLadies, SamplerKind::kFastGcn,
        SamplerKind::kLabor, SamplerKind::kGraphSaint, SamplerKind::kNode2Vec,
        SamplerKind::kPinSage}) {
    for (const DistMode mode : {DistMode::kReplicated, DistMode::kPartitioned}) {
      EXPECT_TRUE(SamplerRegistry::instance().contains(kind, mode))
          << to_string(kind) << "/" << to_string(mode);
    }
  }
}

TEST(SamplerFactory, UnregisteredCombinationThrows) {
  const Graph g = test_graph();
  const ProcessGrid grid(4, 2);
  SamplerContext ctx = make_context(&grid);
  auto& registry = SamplerRegistry::instance();
  // Vacate a slot to observe the unregistered behavior, then restore it.
  auto previous = registry.register_creator(SamplerKind::kLabor,
                                            DistMode::kPartitioned, {});
  ASSERT_TRUE(previous != nullptr);
  EXPECT_FALSE(registry.contains(SamplerKind::kLabor, DistMode::kPartitioned));
  EXPECT_THROW(
      make_sampler(SamplerKind::kLabor, DistMode::kPartitioned, g, ctx), DmsError);
  registry.register_creator(SamplerKind::kLabor, DistMode::kPartitioned,
                            std::move(previous));
  EXPECT_TRUE(registry.contains(SamplerKind::kLabor, DistMode::kPartitioned));
}

TEST(SamplerFactory, PartitionedModeRequiresGrid) {
  const Graph g = test_graph();
  SamplerContext ctx = make_context(/*grid=*/nullptr);
  EXPECT_THROW(
      make_sampler(SamplerKind::kGraphSage, DistMode::kPartitioned, g, ctx), DmsError);
}

TEST(SamplerFactory, RegistryIsRuntimeExtensible) {
  const Graph g = test_graph();
  const ProcessGrid grid(4, 2);
  SamplerContext ctx = make_context(&grid);
  auto& registry = SamplerRegistry::instance();
  // Override an occupied slot with a stand-in creator; the previous creator
  // comes back so the override can be reverted.
  auto previous = registry.register_creator(
      SamplerKind::kFastGcn, DistMode::kPartitioned,
      [](const Graph& graph, const SamplerContext& c) {
        return std::make_unique<FastGcnSampler>(graph, c.config);
      });
  EXPECT_TRUE(previous != nullptr);
  const auto sampler =
      make_sampler(SamplerKind::kFastGcn, DistMode::kPartitioned, g, ctx);
  EXPECT_EQ(sampler->sample_one({0, 1}, 0, 5).layers.size(), 2u);
  // The stand-in is a replicated FastGCN, so the downcast must now fail...
  EXPECT_THROW(as_partitioned(*sampler), DmsError);
  // ...and restoring the previous creator brings the partitioned form back.
  registry.register_creator(SamplerKind::kFastGcn, DistMode::kPartitioned,
                            std::move(previous));
  const auto restored =
      make_sampler(SamplerKind::kFastGcn, DistMode::kPartitioned, g, ctx);
  EXPECT_NO_THROW(as_partitioned(*restored));
}

TEST(SamplerFactory, AsPartitionedRejectsReplicatedSamplers) {
  const Graph g = test_graph();
  const auto rep = make_sampler(SamplerKind::kGraphSage, g, {{4}, 1});
  EXPECT_THROW(as_partitioned(*rep), DmsError);
  const ProcessGrid grid(4, 2);
  SamplerContext ctx = make_context(&grid);
  auto part = make_sampler(SamplerKind::kGraphSage, DistMode::kPartitioned, g, ctx);
  const PartitionedSamplerBase& pb = as_partitioned(*part);
  EXPECT_EQ(pb.grid().rows(), 2);
  EXPECT_EQ(pb.grid().replication(), 2);
  EXPECT_EQ(pb.dist_adjacency().rows(), g.num_vertices());
}

TEST(SamplerFactory, BoundClusterReceivesPhaseAccounting) {
  const Graph g = test_graph();
  Cluster cluster(ProcessGrid(4, 2), CostModel(LinkParams{}));
  SamplerContext ctx = make_context(&cluster.grid());
  ctx.cluster = &cluster;
  const auto part =
      make_sampler(SamplerKind::kGraphSage, DistMode::kPartitioned, g, ctx);
  part->sample_bulk({{0, 1, 2, 3}}, {0}, 7);
  EXPECT_GT(cluster.phase_time(kPhaseProbability), 0.0);
  EXPECT_GT(cluster.phase_time(kPhaseSampling), 0.0);
  EXPECT_GT(cluster.phase_time(kPhaseExtraction), 0.0);
}

}  // namespace
}  // namespace dms
