// The unified SpGEMM engine: property tests asserting every kernel (dense,
// hash, auto-dispatched, masked) produces bit-identical results on random
// CSR inputs across shapes — including empty rows/columns and random
// duplicate-free masks — plus dispatch and mask-contract checks.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

using testutil::dense_matmul;
using testutil::random_csr;

CsrMatrix run(const CsrMatrix& a, const CsrMatrix& b, SpgemmKernel kernel,
              bool parallel = true) {
  SpgemmOptions opts;
  opts.kernel = kernel;
  opts.parallel = parallel;
  return spgemm(a, b, opts);
}

/// Random sorted duplicate-free subset of [0, cols).
std::vector<index_t> random_mask(index_t cols, double keep, std::uint64_t seed) {
  Pcg32 rng(seed, 0x3a5c);
  std::vector<index_t> mask;
  for (index_t c = 0; c < cols; ++c) {
    if (rng.uniform() < keep) mask.push_back(c);
  }
  return mask;
}

struct EngineSweep {
  index_t m, k, n;
  double da, db;
};

class SpgemmEngineSweep : public ::testing::TestWithParam<EngineSweep> {};

TEST_P(SpgemmEngineSweep, AllKernelsBitIdentical) {
  const auto p = GetParam();
  const CsrMatrix a = random_csr(p.m, p.k, p.da, 311 + p.m);
  const CsrMatrix b = random_csr(p.k, p.n, p.db, 313 + p.n);

  const CsrMatrix dense = run(a, b, SpgemmKernel::kDense);
  dense.validate();
  const CsrMatrix hash = run(a, b, SpgemmKernel::kHash);
  hash.validate();
  const CsrMatrix autok = run(a, b, SpgemmKernel::kAuto);
  const CsrMatrix serial = run(a, b, SpgemmKernel::kAuto, /*parallel=*/false);

  // Bit-identity across kernels, dispatch, and block decompositions.
  EXPECT_TRUE(dense == hash);
  EXPECT_TRUE(dense == autok);
  EXPECT_TRUE(dense == serial);

  // And the numbers are actually right.
  const DenseD ref = dense_matmul(to_dense(a), to_dense(b));
  EXPECT_LT(DenseD::max_abs_diff(to_dense(dense), ref), 1e-12);
}

TEST_P(SpgemmEngineSweep, MaskedVariantMatchesProductThenSlice) {
  const auto p = GetParam();
  const CsrMatrix a = random_csr(p.m, p.k, p.da, 311 + p.m);
  const CsrMatrix b = random_csr(p.k, p.n, p.db, 313 + p.n);
  const CsrMatrix full = run(a, b, SpgemmKernel::kDense);

  for (const double keep : {0.0, 0.25, 1.0}) {
    const std::vector<index_t> mask =
        random_mask(p.n, keep, 317 + p.m + static_cast<std::uint64_t>(keep * 8));
    SpgemmOptions opts;
    opts.column_mask = &mask;
    const CsrMatrix masked = spgemm(a, b, opts);
    masked.validate();
    EXPECT_EQ(masked.cols(), static_cast<index_t>(mask.size()));
    if (mask.empty()) {
      EXPECT_EQ(masked.nnz(), 0);
      continue;
    }
    EXPECT_TRUE(masked == extract_columns(full, mask));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndDensities, SpgemmEngineSweep,
    ::testing::Values(EngineSweep{1, 1, 1, 1.0, 1.0},
                      EngineSweep{5, 7, 3, 0.5, 0.5},
                      // density 0 operands: every row/column empty
                      EngineSweep{12, 9, 14, 0.0, 0.4},
                      EngineSweep{12, 9, 14, 0.4, 0.0},
                      // sparse operands with many structurally empty rows/cols
                      EngineSweep{40, 30, 50, 0.03, 0.03},
                      EngineSweep{16, 16, 16, 0.1, 0.9},
                      EngineSweep{16, 16, 16, 0.9, 0.1},
                      EngineSweep{1, 40, 40, 0.3, 0.3},
                      EngineSweep{40, 1, 40, 1.0, 1.0},
                      EngineSweep{40, 40, 1, 0.3, 0.3},
                      // tall-thin vs short-wide (hash vs dense territory)
                      EngineSweep{4, 64, 512, 0.2, 0.05},
                      EngineSweep{128, 16, 8, 0.4, 0.6},
                      EngineSweep{100, 100, 100, 0.02, 0.02},
                      // folded from the retired hash-kernel suite
                      EngineSweep{16, 128, 16, 0.3, 0.02},
                      EngineSweep{33, 77, 55, 0.02, 0.5}));

// --- folded from tests/test_spgemm_hash.cpp (the suite that tested the
// pre-engine hash kernel; it has exercised the engine API since PR 2) -----

TEST(SpgemmEngine, HashKernelSurvivesCollisionHeavyColumns) {
  // Many A rows hitting the same few B columns stresses probing/merging.
  CooMatrix acoo(32, 8);
  CooMatrix bcoo(8, 4);
  Pcg32 rng(7);
  for (index_t r = 0; r < 32; ++r) {
    for (index_t k = 0; k < 8; ++k) acoo.push(r, k, rng.uniform() + 0.1);
  }
  for (index_t k = 0; k < 8; ++k) {
    for (index_t c = 0; c < 4; ++c) bcoo.push(k, c, rng.uniform() + 0.1);
  }
  const CsrMatrix a = CsrMatrix::from_coo(acoo);
  const CsrMatrix b = CsrMatrix::from_coo(bcoo);
  EXPECT_TRUE(run(a, b, SpgemmKernel::kHash) == run(a, b, SpgemmKernel::kDense));
}

TEST(SpgemmEngine, EstimatorPrefersHashForSparseRowsOverWideOutput) {
  // Tiny flop volume into a huge column space → the dense accumulator's
  // O(cols) workspace cannot amortize.
  EXPECT_EQ(spgemm_pick_kernel(16, 1 << 20), SpgemmKernel::kHash);
  // Dense row blocks over a modest column space → dense wins.
  EXPECT_EQ(spgemm_pick_kernel(1 << 20, 1024), SpgemmKernel::kDense);
}

TEST(SpgemmEngine, MaskedExtractionMatchesExtractColumns) {
  const CsrMatrix a = random_csr(30, 80, 0.15, 401);
  for (const double keep : {0.1, 0.5, 1.0}) {
    const std::vector<index_t> mask =
        random_mask(80, keep, 403 + static_cast<std::uint64_t>(keep * 16));
    if (mask.empty()) continue;
    EXPECT_TRUE(spgemm_masked(a, mask) == extract_columns(a, mask));
  }
}

TEST(SpgemmEngine, MaskedExtractionEmptyMask) {
  const CsrMatrix a = random_csr(6, 10, 0.5, 405);
  const std::vector<index_t> empty;
  const CsrMatrix e = spgemm_masked(a, empty);
  EXPECT_EQ(e.rows(), 6);
  EXPECT_EQ(e.cols(), 0);
  EXPECT_EQ(e.nnz(), 0);
}

TEST(SpgemmEngine, MaskContractViolationsThrow) {
  const CsrMatrix a = random_csr(4, 6, 0.5, 407);
  const CsrMatrix b = random_csr(6, 8, 0.5, 408);
  const std::vector<index_t> unsorted{3, 1};
  const std::vector<index_t> duplicated{2, 2};
  const std::vector<index_t> out_of_range{7, 8};
  SpgemmOptions opts;
  opts.column_mask = &unsorted;
  EXPECT_THROW(spgemm(a, b, opts), DmsError);
  opts.column_mask = &duplicated;
  EXPECT_THROW(spgemm(a, b, opts), DmsError);
  opts.column_mask = &out_of_range;
  EXPECT_THROW(spgemm(a, b, opts), DmsError);
  EXPECT_THROW(spgemm_masked(a, out_of_range), DmsError);
  // Forcing the masked kernel without providing a mask is a contract error.
  SpgemmOptions no_mask;
  no_mask.kernel = SpgemmKernel::kMasked;
  EXPECT_THROW(spgemm(a, b, no_mask), DmsError);
}

TEST(SpgemmEngine, DimensionMismatchThrows) {
  EXPECT_THROW(spgemm(CsrMatrix(2, 3), CsrMatrix(4, 2)), DmsError);
}

TEST(SpgemmEngine, FlopBalancedBlocksHandleFewRows) {
  // m far below the thread count: the old ceil_div decomposition produced
  // trailing empty blocks; the flop-balanced bounds never do, and results
  // stay bit-identical between serial and parallel runs.
  const CsrMatrix a = random_csr(2, 300, 0.3, 411);
  const CsrMatrix b = random_csr(300, 200, 0.05, 412);
  EXPECT_TRUE(run(a, b, SpgemmKernel::kAuto, true) ==
              run(a, b, SpgemmKernel::kAuto, false));
}

TEST(SpgemmEngine, SkewedRowsStayBitIdenticalAcrossDecompositions) {
  // One massive row among many empty ones stresses the flop-balanced
  // boundary placement (most blocks end up owning only empty rows).
  CooMatrix acoo(64, 128);
  Pcg32 rng(9);
  for (index_t k = 0; k < 128; ++k) acoo.push(17, k, rng.uniform() + 0.1);
  acoo.push(63, 5, 1.0);
  const CsrMatrix a = CsrMatrix::from_coo(acoo);
  const CsrMatrix b = random_csr(128, 256, 0.1, 413);
  const CsrMatrix par = run(a, b, SpgemmKernel::kAuto, true);
  par.validate();
  EXPECT_TRUE(par == run(a, b, SpgemmKernel::kAuto, false));
}

TEST(SpgemmEngine, SharedWorkspaceReuseAcrossKernelsAndShapes) {
  // One arena serving interleaved dense/hash/auto/masked products of
  // different shapes must never change any result: every accumulator
  // re-establishes its own state from whatever a previous call left behind
  // (the stale-mark / stale-hash-fill regression this pins down).
  const CsrMatrix a1 = random_csr(40, 90, 0.2, 421);
  const CsrMatrix b1 = random_csr(90, 120, 0.1, 422);
  const CsrMatrix a2 = random_csr(7, 300, 0.3, 423);
  const CsrMatrix b2 = random_csr(300, 50, 0.05, 424);
  std::vector<index_t> mask;
  for (index_t c = 3; c < 120; c += 7) mask.push_back(c);

  Workspace ws;
  for (int round = 0; round < 3; ++round) {
    for (const SpgemmKernel kernel :
         {SpgemmKernel::kDense, SpgemmKernel::kHash, SpgemmKernel::kAuto}) {
      SpgemmOptions fresh;
      fresh.kernel = kernel;
      SpgemmOptions reused = fresh;
      reused.workspace = &ws;
      EXPECT_TRUE(spgemm(a1, b1, reused) == spgemm(a1, b1, fresh));
      EXPECT_TRUE(spgemm(a2, b2, reused) == spgemm(a2, b2, fresh));
    }
    SpgemmOptions fresh;
    fresh.column_mask = &mask;
    SpgemmOptions reused = fresh;
    reused.workspace = &ws;
    EXPECT_TRUE(spgemm(a1, b1, reused) == spgemm(a1, b1, fresh));
    std::vector<index_t> col_mask;  // indexes a1's own 90 columns
    for (index_t c = 2; c < 90; c += 5) col_mask.push_back(c);
    SpgemmOptions mfresh;
    SpgemmOptions mreused;
    mreused.workspace = &ws;
    EXPECT_TRUE(spgemm_masked(a1, col_mask, mreused) ==
                spgemm_masked(a1, col_mask, mfresh));
  }
  EXPECT_GT(ws.bytes_held(), 0u);
}

TEST(SpgemmEngine, WorkspaceSerialAndParallelAgree) {
  const CsrMatrix a = random_csr(100, 150, 0.15, 431);
  const CsrMatrix b = random_csr(150, 80, 0.1, 432);
  Workspace ws;
  SpgemmOptions par;
  par.workspace = &ws;
  SpgemmOptions ser = par;
  ser.parallel = false;
  EXPECT_TRUE(spgemm(a, b, par) == spgemm(a, b, ser));
}

}  // namespace
}  // namespace dms
