// Inverse transform sampling: exactness, distinctness, determinism, and the
// sampling distribution itself.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/its.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

std::vector<value_t> prefix_of(const std::vector<value_t>& weights) {
  std::vector<value_t> p(1, 0.0);
  for (const value_t w : weights) p.push_back(p.back() + w);
  return p;
}

/// Test convenience over the caller-scratch API (the only its_sample_one;
/// the historical no-scratch shim was removed).
void sample_one(const std::vector<value_t>& prefix, index_t s,
                std::uint64_t seed, std::vector<index_t>* out) {
  std::vector<char> chosen;
  its_sample_one(prefix, s, seed, out, chosen);
}

TEST(ItsSampleOne, TakesAllWhenFewerThanS) {
  std::vector<index_t> out;
  sample_one(prefix_of({1.0, 2.0, 3.0}), 5, 1, &out);
  EXPECT_EQ(out, (std::vector<index_t>{0, 1, 2}));
}

TEST(ItsSampleOne, SkipsZeroWeightWhenTakingAll) {
  std::vector<index_t> out;
  sample_one(prefix_of({1.0, 0.0, 3.0}), 5, 1, &out);
  EXPECT_EQ(out, (std::vector<index_t>{0, 2}));
}

TEST(ItsSampleOne, EmptyDistributionYieldsNothing) {
  std::vector<index_t> out{7};
  sample_one({0.0}, 3, 1, &out);
  EXPECT_TRUE(out.empty());
  sample_one(prefix_of({0.0, 0.0}), 3, 1, &out);
  EXPECT_TRUE(out.empty());
}

TEST(ItsSampleOne, ProducesDistinctSortedIndices) {
  const auto prefix = prefix_of({5.0, 1.0, 1.0, 1.0, 1.0, 1.0, 10.0, 1.0});
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    std::vector<index_t> out;
    sample_one(prefix, 4, seed, &out);
    ASSERT_EQ(out.size(), 4u);
    for (std::size_t i = 0; i + 1 < out.size(); ++i) {
      EXPECT_LT(out[i], out[i + 1]);
    }
  }
}

TEST(ItsSampleOne, IsDeterministicPerSeed) {
  const auto prefix = prefix_of({1, 2, 3, 4, 5, 6, 7, 8});
  std::vector<index_t> a, b;
  sample_one(prefix, 3, 99, &a);
  sample_one(prefix, 3, 99, &b);
  EXPECT_EQ(a, b);
  sample_one(prefix, 3, 100, &b);
  EXPECT_NE(a, b);  // overwhelmingly likely
}

TEST(ItsSampleOne, NeverPicksZeroWeightElements) {
  const auto prefix = prefix_of({1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0});
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    std::vector<index_t> out;
    sample_one(prefix, 3, seed, &out);
    for (const index_t i : out) EXPECT_EQ(i % 2, 0) << "picked zero-weight index";
  }
}

TEST(ItsSampleOne, SingleDrawFollowsTheDistribution) {
  // Weights 1:3 → index 1 picked ~75% of the time.
  const auto prefix = prefix_of({1.0, 3.0});
  int count1 = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    std::vector<index_t> out;
    sample_one(prefix, 1, static_cast<std::uint64_t>(t) + 7, &out);
    ASSERT_EQ(out.size(), 1u);
    if (out[0] == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / trials, 0.75, 0.02);
}

TEST(ItsSampleOne, HeavySkewStillCompletes) {
  // One giant weight: redraw-on-duplicate would stall without the
  // deterministic completion sweep.
  std::vector<value_t> w(64, 1e-9);
  w[10] = 1e9;
  std::vector<index_t> out;
  sample_one(prefix_of(w), 8, 3, &out);
  EXPECT_EQ(out.size(), 8u);
  EXPECT_TRUE(std::find(out.begin(), out.end(), 10) != out.end());
}

TEST(ItsSampleRows, RespectsPerRowCaps) {
  const CsrMatrix p = testutil::random_csr(30, 40, 0.2, 61);
  const CsrMatrix q = its_sample_rows(p, 3, std::uint64_t{5});
  q.validate();
  EXPECT_EQ(q.rows(), p.rows());
  EXPECT_EQ(q.cols(), p.cols());
  for (index_t r = 0; r < p.rows(); ++r) {
    EXPECT_EQ(q.row_nnz(r), std::min<nnz_t>(3, p.row_nnz(r)));
  }
}

TEST(ItsSampleRows, SamplesAreNonzerosOfP) {
  const CsrMatrix p = testutil::random_csr(20, 20, 0.3, 62);
  const CsrMatrix q = its_sample_rows(p, 4, std::uint64_t{6});
  for (index_t r = 0; r < p.rows(); ++r) {
    for (const index_t c : q.row_cols(r)) {
      EXPECT_GT(p.at(r, c), 0.0);
    }
  }
}

TEST(ItsSampleRows, ValuesAreOne) {
  const CsrMatrix p = testutil::random_csr(10, 10, 0.5, 63);
  const CsrMatrix q = its_sample_rows(p, 2, std::uint64_t{7});
  for (const value_t v : q.vals()) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(ItsSampleRows, RowSeedFunctionControlsStreams) {
  const CsrMatrix p = testutil::random_csr(10, 30, 0.5, 64);
  const auto fixed = [](index_t) { return std::uint64_t{42}; };
  const CsrMatrix q1 = its_sample_rows(p, 3, fixed);
  const CsrMatrix q2 = its_sample_rows(p, 3, fixed);
  EXPECT_TRUE(q1 == q2);
}

TEST(ItsSampleRows, MarginalFrequenciesMatchWeights) {
  // Row with weights (1,1,2): over many epochs sampling s=1, column 2
  // should appear ~50%.
  const CsrMatrix p =
      CsrMatrix::from_triplets(1, 3, {0, 0, 0}, {0, 1, 2}, {1.0, 1.0, 2.0});
  std::map<index_t, int> counts;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const CsrMatrix q =
        its_sample_rows(p, 1, [t](index_t) { return static_cast<std::uint64_t>(t); });
    counts[q.row_cols(0)[0]]++;
  }
  EXPECT_NEAR(counts[2] / static_cast<double>(trials), 0.5, 0.02);
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.25, 0.02);
}

TEST(ItsSampleRows, NegativeSThrows) {
  EXPECT_THROW(its_sample_rows(CsrMatrix(1, 1), -1, std::uint64_t{0}), DmsError);
}

class ItsSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(ItsSweep, WithoutReplacementForAllS) {
  const index_t s = GetParam();
  const CsrMatrix p = testutil::random_csr(25, 60, 0.4, 65);
  const CsrMatrix q = its_sample_rows(p, s, std::uint64_t{77});
  for (index_t r = 0; r < q.rows(); ++r) {
    const auto cols = q.row_cols(r);
    std::set<index_t> unique(cols.begin(), cols.end());
    EXPECT_EQ(unique.size(), cols.size());
    EXPECT_EQ(static_cast<nnz_t>(cols.size()), std::min<nnz_t>(s, p.row_nnz(r)));
  }
}

INSTANTIATE_TEST_SUITE_P(SampleCounts, ItsSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 100));

}  // namespace
}  // namespace dms
