// Property tests for the feature-row cache (train/feature_cache.hpp) and
// the caching FeatureStore: capacity is never exceeded, LRU eviction order,
// cached fetches return bit-equal rows, zero capacity degenerates to the
// uncached behavior, and the owning-copy option survives its source (the
// dangling-borrow regression).
#include <gtest/gtest.h>

#include <memory>

#include "test_util.hpp"
#include "train/feature_store.hpp"

namespace dms {
namespace {

DenseF make_features(index_t n, index_t f) {
  DenseF h(n, f);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < f; ++j) {
      h(i, j) = static_cast<float>(i * 100 + j);
    }
  }
  return h;
}

std::vector<std::vector<index_t>> random_wanted(int ranks, index_t n,
                                                int rows_per_rank, Pcg32& rng) {
  std::vector<std::vector<index_t>> wanted(static_cast<std::size_t>(ranks));
  for (auto& w : wanted) {
    for (int i = 0; i < rows_per_rank; ++i) {
      w.push_back(static_cast<index_t>(rng.bounded64(static_cast<std::uint64_t>(n))));
    }
  }
  return wanted;
}

TEST(FeatureRowCache, CapacityNeverExceededUnderRandomWorkload) {
  FeatureRowCache cache(FeatureCacheConfig{CachePolicy::kLru, 8});
  Pcg32 rng(123);
  for (int op = 0; op < 2000; ++op) {
    const auto v = static_cast<index_t>(rng.bounded64(64));
    if (!cache.lookup(v)) cache.insert(v);
    ASSERT_LE(cache.size(), cache.capacity());
  }
  EXPECT_EQ(cache.size(), 8);
}

TEST(FeatureRowCache, EvictsLeastRecentlyUsedFirst) {
  FeatureRowCache cache(FeatureCacheConfig{CachePolicy::kLru, 3});
  cache.insert(1);
  cache.insert(2);
  cache.insert(3);
  EXPECT_TRUE(cache.lookup(1));  // refresh: order is now 2, 3, 1
  cache.insert(4);               // evicts 2
  EXPECT_FALSE(cache.lookup(2));
  EXPECT_TRUE(cache.lookup(3));
  EXPECT_TRUE(cache.lookup(4));
  const std::vector<index_t> order = cache.lru_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.back(), 4);  // most recent
}

TEST(FeatureRowCache, ZeroCapacityNeverAdmits) {
  for (const CachePolicy policy :
       {CachePolicy::kNone, CachePolicy::kLru, CachePolicy::kDegreePinned}) {
    FeatureRowCache cache(FeatureCacheConfig{policy, 0});
    EXPECT_FALSE(cache.enabled());
    cache.insert(5);
    EXPECT_FALSE(cache.lookup(5));
    EXPECT_EQ(cache.size(), 0);
  }
}

TEST(FeatureRowCache, PinnedRowsAreStaticAndNeverEvicted) {
  FeatureRowCache cache(FeatureCacheConfig{CachePolicy::kDegreePinned, 2});
  cache.pin({7, 9});
  EXPECT_TRUE(cache.lookup(7));
  EXPECT_TRUE(cache.lookup(9));
  cache.insert(5);  // pinned caches admit nothing dynamically
  EXPECT_FALSE(cache.lookup(5));
  EXPECT_TRUE(cache.lookup(7));
  EXPECT_THROW(cache.pin({1, 2, 3}), DmsError);  // beyond capacity
}

TEST(FeatureCache, CachedFetchesReturnBitEqualRows) {
  const DenseF h = make_features(64, 4);
  Cluster c_plain(ProcessGrid(4, 2), CostModel(LinkParams{}));
  Cluster c_cached(ProcessGrid(4, 2), CostModel(LinkParams{}));
  FeatureStore plain(c_plain.grid(), h);
  FeatureStore cached(c_cached.grid(), h,
                      FeatureStoreOptions{{CachePolicy::kLru, 16}, false});
  Pcg32 rng(7);
  for (int step = 0; step < 8; ++step) {
    const auto wanted = random_wanted(4, 64, 12, rng);
    const auto a = plain.fetch_all(c_plain, wanted);
    const auto b = cached.fetch_all(c_cached, wanted);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t r = 0; r < a.size(); ++r) {
      EXPECT_TRUE(a[r] == b[r]) << "step " << step << " rank " << r;
      // ... and both match the source rows exactly.
      for (std::size_t q = 0; q < wanted[r].size(); ++q) {
        for (index_t j = 0; j < h.cols(); ++j) {
          ASSERT_EQ(b[r](static_cast<index_t>(q), j), h(wanted[r][q], j));
        }
      }
    }
  }
  EXPECT_GT(cached.cache_stats().hits, 0u);
  EXPECT_LT(cached.cache_stats().bytes_moved, plain.cache_stats().bytes_moved);
}

TEST(FeatureCache, ZeroCapacityDegeneratesToUncachedBehavior) {
  const DenseF h = make_features(64, 4);
  Cluster c_none(ProcessGrid(4, 1), CostModel(LinkParams{}));
  Cluster c_zero(ProcessGrid(4, 1), CostModel(LinkParams{}));
  FeatureStore none(c_none.grid(), h);
  FeatureStore zero(c_zero.grid(), h,
                    FeatureStoreOptions{{CachePolicy::kLru, 0}, false});
  Pcg32 rng(11);
  for (int step = 0; step < 4; ++step) {
    const auto wanted = random_wanted(4, 64, 10, rng);
    none.fetch_all(c_none, wanted);
    zero.fetch_all(c_zero, wanted);
  }
  EXPECT_EQ(zero.cache_stats().hits, 0u);
  EXPECT_EQ(zero.cache_stats().bytes_moved, none.cache_stats().bytes_moved);
  EXPECT_EQ(c_zero.comm_stats().at("fetch").bytes,
            c_none.comm_stats().at("fetch").bytes);
  EXPECT_EQ(c_zero.comm_stats().at("fetch").seconds,
            c_none.comm_stats().at("fetch").seconds);
}

TEST(FeatureCache, RepeatFetchesHitAndMoveNoBytes) {
  const DenseF h = make_features(40, 2);
  Cluster cluster(ProcessGrid(4, 1), CostModel(LinkParams{}));
  FeatureStore store(cluster.grid(), h,
                     FeatureStoreOptions{{CachePolicy::kLru, 32}, false});
  // Rank 0 owns rows [0,10); request remote rows twice.
  const std::vector<std::vector<index_t>> wanted = {{20, 21, 22}, {}, {}, {}};
  store.fetch_all(cluster, wanted);
  const std::size_t after_first = store.cache_stats().bytes_moved;
  EXPECT_GT(after_first, 0u);
  store.fetch_all(cluster, wanted);
  EXPECT_EQ(store.cache_stats().bytes_moved, after_first);
  EXPECT_EQ(store.cache_stats().hits, 3u);
  EXPECT_EQ(store.cache_stats().misses, 3u);
}

TEST(FeatureCache, AccountingCoversEveryRequestedRow) {
  const DenseF h = make_features(64, 4);
  Cluster cluster(ProcessGrid(8, 2), CostModel(LinkParams{}));
  FeatureStore store(cluster.grid(), h,
                     FeatureStoreOptions{{CachePolicy::kLru, 8}, false});
  Pcg32 rng(3);
  std::size_t expected = 0;
  for (int step = 0; step < 6; ++step) {
    const auto wanted = random_wanted(8, 64, 9, rng);
    for (const auto& w : wanted) expected += w.size();
    store.fetch_all(cluster, wanted);
  }
  const FeatureCacheStats& s = store.cache_stats();
  EXPECT_EQ(s.requested, expected);
  EXPECT_EQ(s.requested, s.hits + s.misses + s.local);
}

TEST(FeatureCache, StatsDeltaChecksSnapshotOrderInsteadOfWrapping) {
  // Regression: the per-interval delta `later - earlier` subtracted raw
  // unsigned fields, so swapping the operands wrapped every counter into a
  // ~2^64 garbage delta that polluted epoch reports downstream. The
  // subtraction now checks per-field ordering.
  FeatureCacheStats earlier{/*requested=*/10, /*hits=*/4,       /*misses=*/5,
                            /*local=*/1,     /*pinned_hits=*/2, /*bytes_moved=*/80,
                            /*bytes_saved=*/64};
  FeatureCacheStats later{/*requested=*/25, /*hits=*/12,      /*misses=*/10,
                          /*local=*/3,     /*pinned_hits=*/6, /*bytes_moved=*/160,
                          /*bytes_saved=*/192};
  const FeatureCacheStats d = later - earlier;
  EXPECT_EQ(d.requested, 15u);
  EXPECT_EQ(d.hits, 8u);
  EXPECT_EQ(d.misses, 5u);
  EXPECT_EQ(d.local, 2u);
  EXPECT_EQ(d.pinned_hits, 4u);
  EXPECT_EQ(d.bytes_moved, 80u);
  EXPECT_EQ(d.bytes_saved, 128u);
  EXPECT_THROW(earlier - later, DmsError);  // the swapped-operand bug
  // A single out-of-order field trips it too, even when the others pass.
  FeatureCacheStats skewed = later;
  skewed.hits = earlier.hits - 1;
  EXPECT_THROW(skewed - earlier, DmsError);
  // Equal snapshots are a valid (all-zero) interval.
  const FeatureCacheStats zero = earlier - earlier;
  EXPECT_EQ(zero.requested, 0u);
  EXPECT_EQ(zero.bytes_saved, 0u);
}

TEST(FeatureCache, OwningCopySurvivesItsSource) {
  // Dangling-borrow regression (the `const DenseF* features_` hazard): with
  // own_copy the store keeps its own matrix, so destroying the source is
  // safe. Without the option the borrow would dangle here.
  Cluster cluster(ProcessGrid(2, 1), CostModel(LinkParams{}));
  FeatureStoreOptions opts;
  opts.own_copy = true;
  std::unique_ptr<FeatureStore> store;
  {
    const DenseF h = make_features(16, 3);
    store = std::make_unique<FeatureStore>(cluster.grid(), h, opts);
  }  // source destroyed
  EXPECT_TRUE(store->owns_features());
  const std::vector<std::vector<index_t>> wanted = {{0, 15}, {8}};
  const auto out = store->fetch_all(cluster, wanted);
  EXPECT_FLOAT_EQ(out[0](1, 2), 1502.0f);
  EXPECT_FLOAT_EQ(out[1](0, 0), 800.0f);
}

TEST(FeatureCache, PinnedRemoteRowsNeverCrossTheWire) {
  const DenseF h = make_features(40, 2);
  Cluster cluster(ProcessGrid(4, 1), CostModel(LinkParams{}));
  FeatureStore store(cluster.grid(), h,
                     FeatureStoreOptions{{CachePolicy::kDegreePinned, 4}, false});
  store.pin_rows({20, 21});
  const std::vector<std::vector<index_t>> wanted = {{20, 21}, {}, {}, {}};
  store.fetch_all(cluster, wanted);
  EXPECT_EQ(store.cache_stats().hits, 2u);
  EXPECT_EQ(store.cache_stats().bytes_moved, 0u);
  EXPECT_EQ(cluster.comm_stats().at("fetch").bytes, 0u);
}

}  // namespace
}  // namespace dms
