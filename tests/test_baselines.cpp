// Baselines: classic loop-based GraphSAGE, Quiver-sim, and the reference
// CPU LADIES implementation.
#include <gtest/gtest.h>

#include <set>

#include "baselines/classic_sage.hpp"
#include "baselines/ladies_cpu.hpp"
#include "baselines/quiver_sim.hpp"
#include "core/ladies.hpp"
#include "core/minibatch.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

TEST(ClassicSage, RespectsFanoutAndEdges) {
  const Graph g = generate_erdos_renyi(100, 10.0, 61);
  const auto ms = classic_sage_sample(g, {1, 2, 3}, {4, 3}, 0, 7);
  ASSERT_EQ(ms.layers.size(), 2u);
  for (std::size_t l = 0; l < 2; ++l) {
    const auto& layer = ms.layers[l];
    const index_t s = l == 0 ? 4 : 3;
    for (index_t r = 0; r < layer.adj.rows(); ++r) {
      const index_t v = layer.row_vertices[static_cast<std::size_t>(r)];
      EXPECT_EQ(layer.adj.row_nnz(r), std::min<nnz_t>(s, g.out_degree(v)));
      for (const index_t c : layer.adj.row_cols(r)) {
        EXPECT_DOUBLE_EQ(
            g.adjacency().at(v, layer.col_vertices[static_cast<std::size_t>(c)]), 1.0);
      }
    }
  }
}

TEST(ClassicSage, SampledNeighborsAreDistinct) {
  const Graph g = generate_erdos_renyi(60, 20.0, 62);
  const auto ms = classic_sage_sample(g, {5}, {8}, 0, 3);
  const auto cols = ms.layers[0].adj.row_cols(0);
  std::set<index_t> uniq(cols.begin(), cols.end());
  EXPECT_EQ(uniq.size(), cols.size());
}

TEST(ClassicSage, UniformMarginals) {
  // Each neighbor of a degree-d vertex should be picked with prob s/d.
  CooMatrix coo(6, 6);
  for (index_t j = 1; j < 6; ++j) coo.push(0, j, 1.0);
  const Graph g{CsrMatrix::from_coo(coo)};
  std::vector<int> count(6, 0);
  const int trials = 10000;
  for (int t = 0; t < trials; ++t) {
    const auto ms = classic_sage_sample(g, {0}, {2}, 0, static_cast<std::uint64_t>(t));
    for (const index_t c : ms.layers[0].adj.row_cols(0)) {
      ++count[static_cast<std::size_t>(
          ms.layers[0].col_vertices[static_cast<std::size_t>(c)])];
    }
  }
  for (index_t j = 1; j < 6; ++j) {
    EXPECT_NEAR(count[static_cast<std::size_t>(j)] / static_cast<double>(trials),
                0.4, 0.03);
  }
}

TEST(QuiverSim, EpochRunsAndReportsPhases) {
  const Dataset ds = make_planted_dataset(256, 4, 8, 8.0, 0.8, 9);
  Cluster cluster(ProcessGrid(4, 1), CostModel(LinkParams{}));
  QuiverConfig cfg;
  cfg.batch_size = 32;
  cfg.fanouts = {4, 4};
  cfg.hidden = 16;
  QuiverSim quiver(cluster, ds, cfg);
  const auto stats = quiver.run_epoch(0);
  EXPECT_GT(stats.sampling, 0.0);
  EXPECT_GT(stats.fetch, 0.0);
  EXPECT_GT(stats.propagation, 0.0);
  EXPECT_GT(stats.loss, 0.0);
  EXPECT_NEAR(stats.total, stats.sampling + stats.fetch + stats.propagation, 1e-9);
}

TEST(QuiverSim, UvaModeIsSlowerPerEpoch) {
  // Figure 5: GPU sampling beats UVA sampling.
  const Dataset ds = make_planted_dataset(512, 4, 16, 12.0, 0.8, 10);
  QuiverConfig cfg;
  cfg.batch_size = 32;
  cfg.fanouts = {6, 4};
  cfg.hidden = 16;

  // Neutralize measured host-compute noise so the comparison isolates the
  // modeled transfer costs (PCIe vs NVLink), which is what Figure 5 shows.
  LinkParams link;
  link.compute_scale = 1e9;

  Cluster c_gpu(ProcessGrid(4, 1), CostModel(link));
  QuiverSim gpu(c_gpu, ds, cfg);
  const double t_gpu = gpu.run_epoch(0).total;

  cfg.uva = true;
  Cluster c_uva(ProcessGrid(4, 1), CostModel(link));
  QuiverSim uva(c_uva, ds, cfg);
  const double t_uva = uva.run_epoch(0).total;
  EXPECT_GT(t_uva, t_gpu);
}

TEST(QuiverSim, ReplicatesTopologyPerRank) {
  const Dataset ds = make_planted_dataset(256, 4, 8, 8.0, 0.8, 11);
  Cluster cluster(ProcessGrid(4, 1), CostModel(LinkParams{}));
  QuiverConfig cfg;
  QuiverSim quiver(cluster, ds, cfg);
  EXPECT_GT(quiver.per_rank_bytes(0), ds.graph.adjacency().bytes());
}

TEST(LadiesCpu, SamplesMatchLadiesSemantics) {
  const Graph g = generate_erdos_renyi(120, 10.0, 63);
  std::vector<index_t> train;
  for (index_t v = 0; v < 64; ++v) train.push_back(v);
  const auto batches = make_epoch_batches(train, 16, 3);
  const auto result = ladies_cpu_reference(g, batches, 12, 5);
  ASSERT_EQ(result.samples.size(), batches.size());
  EXPECT_GT(result.seconds, 0.0);
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const auto& layer = result.samples[b].layers[0];
    // Every kept edge exists and points into the sampled frontier.
    for (index_t r = 0; r < layer.adj.rows(); ++r) {
      const index_t u = layer.row_vertices[static_cast<std::size_t>(r)];
      for (const index_t c : layer.adj.row_cols(r)) {
        EXPECT_DOUBLE_EQ(
            g.adjacency().at(u, layer.col_vertices[static_cast<std::size_t>(c)]), 1.0);
      }
    }
    // At most s new vertices beyond the batch.
    EXPECT_LE(layer.col_vertices.size(), batches[b].size() + 12);
  }
}

TEST(LadiesCpu, SampledSetsComeFromNeighborhood) {
  const Graph g = generate_erdos_renyi(100, 8.0, 64);
  const std::vector<std::vector<index_t>> batches = {{0, 1, 2, 3}};
  const auto result = ladies_cpu_reference(g, batches, 8, 6);
  std::set<index_t> neighborhood;
  for (const index_t u : batches[0]) {
    for (const index_t v : g.adjacency().row_cols(u)) neighborhood.insert(v);
  }
  const auto& f = result.samples[0].layers[0].col_vertices;
  for (std::size_t i = batches[0].size(); i < f.size(); ++i) {
    EXPECT_TRUE(neighborhood.count(f[i]) > 0);
  }
}

}  // namespace
}  // namespace dms
