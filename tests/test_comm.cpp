// Communication substrate: cost model formulas, process grid, cluster
// clock accounting.
#include <gtest/gtest.h>

#include "comm/cluster.hpp"
#include "comm/costmodel.hpp"
#include "comm/grid.hpp"

namespace dms {
namespace {

LinkParams test_link() {
  LinkParams l;
  l.alpha = 1e-6;
  l.beta_intra = 1e-11;
  l.beta_inter = 4e-11;
  l.ranks_per_node = 4;
  return l;
}

TEST(CostModel, NodeMembership) {
  CostModel m(test_link());
  EXPECT_TRUE(m.same_node(0, 3));
  EXPECT_FALSE(m.same_node(3, 4));
  EXPECT_EQ(m.node_of(7), 1);
}

TEST(CostModel, P2pUsesCorrectBeta) {
  CostModel m(test_link());
  EXPECT_DOUBLE_EQ(m.p2p(0, 1, 1000), 1e-6 + 1000 * 1e-11);
  EXPECT_DOUBLE_EQ(m.p2p(0, 4, 1000), 1e-6 + 1000 * 4e-11);
}

TEST(CostModel, GroupBetaIsWorstLink) {
  CostModel m(test_link());
  EXPECT_DOUBLE_EQ(m.group_beta({0, 1, 2}), 1e-11);
  EXPECT_DOUBLE_EQ(m.group_beta({0, 1, 5}), 4e-11);
}

TEST(CostModel, BroadcastScalesLogarithmically) {
  CostModel m(test_link());
  const double t2 = m.broadcast({0, 1}, 1 << 20);
  const double t4 = m.broadcast({0, 1, 2, 3}, 1 << 20);
  EXPECT_NEAR(t4 / t2, 2.0, 1e-9);  // log2(4)/log2(2)
  EXPECT_DOUBLE_EQ(m.broadcast({0}, 1 << 20), 0.0);
}

TEST(CostModel, AllreduceApproachesTwiceBandwidth) {
  CostModel m(test_link());
  // Ring all-reduce moves ~2·bytes·(n-1)/n: grows with n but bounded by 2×.
  const std::size_t bytes = 100 << 20;
  const double t2 = m.allreduce({0, 1}, bytes);
  const double t4 = m.allreduce({0, 1, 2, 3}, bytes);
  EXPECT_GT(t4, t2);
  EXPECT_LT(t4, 2.0 * static_cast<double>(bytes) * 1e-11 + 1e-3);
}

TEST(CostModel, AlltoallvIsMaxOverRanks) {
  CostModel m(test_link());
  std::vector<std::vector<std::size_t>> bytes = {
      {0, 100, 100},
      {0, 0, 0},
      {1000000, 0, 0},
  };
  const double t = m.alltoallv({0, 1, 2}, bytes);
  // Rank 2 sends 1 MB intra-node: dominates.
  EXPECT_NEAR(t, 1e-6 + 1e6 * 1e-11, 1e-12);
}

TEST(ProcessGrid, RowColumnDecomposition) {
  // Column-major: a process column's p/c ranks are contiguous.
  ProcessGrid g(8, 2);
  EXPECT_EQ(g.rows(), 4);
  EXPECT_EQ(g.rank_of(2, 1), 6);
  EXPECT_EQ(g.row_of(6), 2);
  EXPECT_EQ(g.col_of(6), 1);
  EXPECT_EQ(g.row_ranks(1), (std::vector<int>{1, 5}));
  EXPECT_EQ(g.col_ranks(0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(g.col_ranks(1), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(g.all_ranks().size(), 8u);
}

TEST(ProcessGrid, RejectsNonDividingC) {
  EXPECT_THROW(ProcessGrid(6, 4), DmsError);
  EXPECT_THROW(ProcessGrid(0, 1), DmsError);
}

TEST(Cluster, SuperstepTakesMaxOverRanks) {
  Cluster cluster(ProcessGrid(4, 1), CostModel(test_link()));
  cluster.superstep("work", [](int rank) {
    volatile double x = 0;
    for (int i = 0; i < (rank + 1) * 1000; ++i) x += i;
  });
  EXPECT_GT(cluster.compute_time().at("work"), 0.0);
}

TEST(Cluster, ComputeScaleDividesMeasuredTime) {
  LinkParams l = test_link();
  l.compute_scale = 10.0;
  Cluster fast(ProcessGrid(1, 1), CostModel(l));
  Cluster slow(ProcessGrid(1, 1), CostModel(test_link()));
  fast.add_compute("x", 1.0);
  slow.add_compute("x", 1.0);
  EXPECT_NEAR(fast.compute_time().at("x") * 10.0, slow.compute_time().at("x"), 1e-12);
}

TEST(Cluster, CommAndOverheadAccounting) {
  Cluster cluster(ProcessGrid(2, 1), CostModel(test_link()));
  cluster.record_comm("fetch", 0.5, 1024, 3);
  cluster.record_comm("fetch", 0.25, 1024, 1);
  cluster.add_overhead("sampling", 0.1);
  EXPECT_DOUBLE_EQ(cluster.comm_stats().at("fetch").seconds, 0.75);
  EXPECT_EQ(cluster.comm_stats().at("fetch").bytes, 2048u);
  EXPECT_EQ(cluster.comm_stats().at("fetch").messages, 4u);
  EXPECT_DOUBLE_EQ(cluster.total_comm(), 0.75);
  EXPECT_DOUBLE_EQ(cluster.total_compute(), 0.1);
  EXPECT_DOUBLE_EQ(cluster.total_time(), 0.85);
  EXPECT_DOUBLE_EQ(cluster.phase_time("fetch"), 0.75);
  cluster.reset_clock();
  EXPECT_DOUBLE_EQ(cluster.total_time(), 0.0);
}

TEST(Cluster, SuperstepRecordedAttributesPhases) {
  Cluster cluster(ProcessGrid(3, 1), CostModel(test_link()));
  cluster.superstep_recorded([](int rank, PhaseRecorder& rec) {
    rec.add("a", 0.1 * (rank + 1));
    rec.add("b", 0.2);
  });
  EXPECT_NEAR(cluster.compute_time().at("a"), 0.3, 1e-12);
  EXPECT_NEAR(cluster.compute_time().at("b"), 0.2, 1e-12);
}

}  // namespace
}  // namespace dms
